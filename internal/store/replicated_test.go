package store

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// openRepl opens an N-way replicated store under root with the usual
// test options; fss, when non-nil, provides per-replica filesystems.
func openRepl(t *testing.T, root string, n, w int, fss []FS) *ReplicatedStore {
	t.Helper()
	opts := Options{Sleep: noSleep}
	var r *ReplicatedStore
	var err error
	if fss != nil {
		r, err = OpenReplicated(root, ReplicaDirs(root, n), w, opts, fss...)
	} else {
		r, err = OpenReplicated(root, ReplicaDirs(root, n), w, opts)
	}
	if err != nil {
		t.Fatalf("OpenReplicated: %v", err)
	}
	return r
}

// TestReplicatedCommitAndRead: the happy path — a quorum commit lands
// on every replica, reads verify, and the replicas are byte-identical.
func TestReplicatedCommitAndRead(t *testing.T) {
	root := t.TempDir()
	r := openRepl(t, root, 3, 2, nil)
	defer r.Wait()

	want := payload(1, 5000)
	gen, err := r.Commit(7, want)
	if err != nil {
		t.Fatal(err)
	}
	if gen.Seq != 1 || gen.Step != 7 {
		t.Fatalf("gen = %+v", gen)
	}
	got, err := r.ReadGeneration(gen.Seq)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("read back: %v", err)
	}
	r.Wait()
	for i := 0; i < 3; i++ {
		data, err := os.ReadFile(filepath.Join(root, fmt.Sprintf("r%d", i), genName(1)))
		if err != nil || !bytes.Equal(data, want) {
			t.Fatalf("replica %d payload differs: %v", i, err)
		}
	}
	if d := r.Divergence(); d != 0 {
		t.Fatalf("divergence = %d after clean commit", d)
	}
}

// TestReplicatedStreamCommit: CommitStream fans one producer stream out
// to all replicas and the record matches a buffered commit of the same
// bytes.
func TestReplicatedStreamCommit(t *testing.T) {
	root := t.TempDir()
	r := openRepl(t, root, 3, 2, nil)
	defer r.Wait()

	want := payload(3, commitChunk*2+123) // cross chunk boundaries
	gen, err := r.CommitStream(9, func(w io.Writer) error {
		half := len(want) / 2
		if _, err := w.Write(want[:half]); err != nil {
			return err
		}
		_, err := w.Write(want[half:])
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if gen.Size != uint64(len(want)) {
		t.Fatalf("streamed size %d != %d", gen.Size, len(want))
	}
	got, err := r.ReadGeneration(gen.Seq)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("read back: %v", err)
	}
}

// TestReplicatedCommitSurvivesOneDeadReplica: W=2 of N=3 — one replica
// crashing mid-commit must not fail the commit, and scrub heals the
// victim afterwards.
func TestReplicatedCommitSurvivesOneDeadReplica(t *testing.T) {
	for victim := 0; victim < 3; victim++ {
		t.Run(fmt.Sprintf("victim%d", victim), func(t *testing.T) {
			root := t.TempDir()
			fss := make([]FS, 3)
			var ffs *FaultFS
			for i := range fss {
				f := NewFaultFS(OsFS{})
				fss[i] = f
				if i == victim {
					ffs = f
				}
			}
			r := openRepl(t, root, 3, 2, fss)
			defer r.Wait()

			want := payload(1, 4000)
			ffs.FailAt(ffs.Ops()+3, Fault{Kind: Crash})
			gen, err := r.Commit(5, want)
			if err != nil {
				t.Fatalf("quorum commit failed with one dead replica: %v", err)
			}
			r.Wait()
			if !ffs.Crashed() {
				t.Fatal("victim never crashed; fault plan missed")
			}
			got, err := r.ReadGeneration(gen.Seq)
			if err != nil || !bytes.Equal(got, want) {
				t.Fatalf("read with dead replica: %v", err)
			}

			// "Reboot" the fleet and scrub: the victim converges.
			r2 := openRepl(t, root, 3, 2, nil)
			defer r2.Wait()
			rep, err := r2.Scrub(ScrubOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Divergent != 0 {
				t.Fatalf("divergence %d after scrub: %+v", rep.Divergent, rep)
			}
			for i := 0; i < 3; i++ {
				data, err := os.ReadFile(filepath.Join(root, fmt.Sprintf("r%d", i), genName(gen.Seq)))
				if err != nil || !bytes.Equal(data, want) {
					t.Fatalf("replica %d not healed: %v", i, err)
				}
			}
		})
	}
}

// TestReplicatedReadRepairsLyingReplica: a replica that silently
// corrupts its payload (bit flip during the write) still acknowledges
// the commit; the read must skip it, serve verified bytes, and push the
// good copy back onto it.
func TestReplicatedReadRepairsLyingReplica(t *testing.T) {
	root := t.TempDir()
	fss := make([]FS, 3)
	var liar *FaultFS
	for i := range fss {
		f := NewFaultFS(OsFS{})
		fss[i] = f
		if i == 0 {
			liar = f
		}
	}
	r := openRepl(t, root, 3, 2, fss)
	defer r.Wait()

	want := payload(1, 2000)
	liar.FailAt(liar.Ops()+2, Fault{Kind: BitFlip, FlipByte: 100})
	gen, err := r.Commit(1, want)
	if err != nil {
		t.Fatal(err)
	}
	r.Wait()

	got, err := r.ReadGeneration(gen.Seq)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("read with lying replica: %v", err)
	}
	// The read repaired the liar in-line: its on-disk copy is fixed.
	data, err := os.ReadFile(filepath.Join(root, "r0", genName(gen.Seq)))
	if err != nil || !bytes.Equal(data, want) {
		t.Fatalf("liar not repaired: %v", err)
	}
}

// TestReplicatedSlowReplica: a blanket-slow replica must not fail the
// commit — quorum returns with the two fast replicas — and the
// straggler still converges once its writes finish.
func TestReplicatedSlowReplica(t *testing.T) {
	root := t.TempDir()
	fss := make([]FS, 3)
	var slow *FaultFS
	for i := range fss {
		f := NewFaultFS(OsFS{})
		fss[i] = f
		if i == 2 {
			slow = f
		}
	}
	var stalls int
	var mu sync.Mutex
	slow.SetSleep(func(time.Duration) { mu.Lock(); stalls++; mu.Unlock() })
	slow.SetOpDelay(50 * time.Millisecond)

	r := openRepl(t, root, 3, 2, fss)
	want := payload(1, 3000)
	gen, err := r.Commit(2, want)
	if err != nil {
		t.Fatalf("commit with slow replica: %v", err)
	}
	r.Wait() // drain the straggler before inspecting its directory
	mu.Lock()
	n := stalls
	mu.Unlock()
	if n == 0 {
		t.Fatal("slow replica never stalled; latency plan missed")
	}
	data, err := os.ReadFile(filepath.Join(root, "r2", genName(gen.Seq)))
	if err != nil || !bytes.Equal(data, want) {
		t.Fatalf("slow replica did not converge: %v", err)
	}
}

// TestReplicatedReplicaLossHeals: one replica's directory is wiped
// entirely (disk loss); reopening resurrects it empty and scrub
// re-materializes every quorum-agreed generation onto it.
func TestReplicatedReplicaLossHeals(t *testing.T) {
	root := t.TempDir()
	r := openRepl(t, root, 3, 2, nil)
	var gens []Generation
	var wants [][]byte
	for i := 1; i <= 3; i++ {
		want := payload(i, 1000*i)
		g, err := r.Commit(i, want)
		if err != nil {
			t.Fatal(err)
		}
		gens = append(gens, g)
		wants = append(wants, want)
	}
	r.Wait()
	if err := os.RemoveAll(filepath.Join(root, "r1")); err != nil {
		t.Fatal(err)
	}

	r2 := openRepl(t, root, 3, 2, nil)
	defer r2.Wait()
	// The quorum view is intact despite the loss.
	latest, ok := r2.Latest()
	if !ok || latest != gens[2] {
		t.Fatalf("latest after loss = %+v ok=%v", latest, ok)
	}
	rep, err := r2.Scrub(ScrubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Divergent != 0 {
		t.Fatalf("divergence %d after heal", rep.Divergent)
	}
	healed := rep.Replicas[1].Repaired
	if len(healed) != 3 {
		t.Fatalf("replica 1 repaired %v, want all three generations", healed)
	}
	for i, g := range gens {
		data, err := os.ReadFile(filepath.Join(root, "r1", genName(g.Seq)))
		if err != nil || !bytes.Equal(data, wants[i]) {
			t.Fatalf("gen %d not re-materialized: %v", g.Seq, err)
		}
	}
}

// TestReplicatedScrubQuarantinesSubQuorumDebris: state a failed quorum
// write left on a single replica is parked in quarantine by the next
// scrub, converging the fleet.
func TestReplicatedScrubQuarantinesSubQuorumDebris(t *testing.T) {
	root := t.TempDir()
	r := openRepl(t, root, 3, 2, nil)
	want := payload(1, 800)
	if _, err := r.Commit(1, want); err != nil {
		t.Fatal(err)
	}
	r.Wait()
	// Simulate a failed quorum write: one replica accepted a gen the
	// others never saw.
	st, _ := r.Replica(0)
	if _, err := st.CommitAt(2, 9, payload(9, 900)); err != nil {
		t.Fatal(err)
	}

	if d := r.Divergence(); d == 0 {
		t.Fatal("debris not visible as divergence")
	}
	rep, err := r.Scrub(ScrubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Divergent != 0 {
		t.Fatalf("divergence %d after scrub", rep.Divergent)
	}
	found := false
	for _, q := range rep.Quarantined {
		if q.Seq == 2 && q.Reason == "divergent" {
			found = true
		}
	}
	if !found {
		t.Fatalf("debris not quarantined: %+v", rep.Quarantined)
	}
	// The quorum-agreed generation is untouched.
	if got, err := r.ReadGeneration(1); err != nil || !bytes.Equal(got, want) {
		t.Fatalf("agreed gen damaged by convergence: %v", err)
	}
}

// TestReplicatedQuorumFailure: with two of three replicas dead the
// commit must fail with ErrQuorum, and the survivors' store state must
// still serve the previous generation.
func TestReplicatedQuorumFailure(t *testing.T) {
	root := t.TempDir()
	fss := make([]FS, 3)
	ffss := make([]*FaultFS, 3)
	for i := range fss {
		ffss[i] = NewFaultFS(OsFS{})
		fss[i] = ffss[i]
	}
	r := openRepl(t, root, 3, 2, fss)
	defer r.Wait()
	want := payload(1, 1200)
	if _, err := r.Commit(1, want); err != nil {
		t.Fatal(err)
	}
	r.Wait()
	ffss[0].CrashNow()
	ffss[1].CrashNow()
	if _, err := r.Commit(2, payload(2, 1200)); !errors.Is(err, ErrQuorum) {
		t.Fatalf("commit with 2 dead replicas: %v", err)
	}
	r.Wait()
	if got, err := r.ReadGeneration(1); err != nil || !bytes.Equal(got, want) {
		t.Fatalf("previous generation lost after quorum failure: %v", err)
	}
}

// TestReplicatedSingleReplicaLayout: N=1 keeps the unreplicated on-disk
// layout — the store root IS the replica root, byte-identical to a
// plain Store.
func TestReplicatedSingleReplicaLayout(t *testing.T) {
	rootA := t.TempDir()
	rootB := t.TempDir()
	want := payload(1, 2500)

	plain := openTest(t, rootA, Options{})
	if _, err := plain.Commit(3, want); err != nil {
		t.Fatal(err)
	}
	r, err := OpenReplicated(rootB, ReplicaDirs(rootB, 1), 1, Options{Sleep: noSleep})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Commit(3, want); err != nil {
		t.Fatal(err)
	}
	r.Wait()

	for _, name := range []string{manifestName, genName(1)} {
		a, err := os.ReadFile(filepath.Join(rootA, name))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(rootB, name))
		if err != nil {
			t.Fatalf("single-replica layout misses %s at root: %v", name, err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("%s differs between plain and 1-replica store", name)
		}
	}
}

// TestJitteredBackoffSeeded: the retry backoff must (a) stay inside
// [base/2, base) per attempt, (b) be reproducible under a seeded
// jitter source, and (c) actually vary across different seeds — the
// regression guard for the thundering-herd fix.
func TestJitteredBackoffSeeded(t *testing.T) {
	run := func(seed int64) []time.Duration {
		var sleeps []time.Duration
		rng := rand.New(rand.NewSource(seed))
		s := &Store{opts: Options{
			Retries:     4,
			BackoffBase: 16 * time.Millisecond,
			BackoffCap:  64 * time.Millisecond,
			Sleep:       func(d time.Duration) { sleeps = append(sleeps, d) },
			Jitter:      rng.Float64,
		}.withDefaults()}
		calls := 0
		err := s.retry("op", func() error {
			calls++
			if calls <= 3 {
				return transientErr{errors.New("flaky")}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("retry gave up: %v", err)
		}
		return sleeps
	}

	a := run(42)
	if len(a) != 3 {
		t.Fatalf("expected 3 backoff sleeps, got %d", len(a))
	}
	backoff := 16 * time.Millisecond
	for i, d := range a {
		if d < backoff/2 || d >= backoff {
			t.Fatalf("sleep %d = %v outside [%v, %v)", i, d, backoff/2, backoff)
		}
		backoff *= 2
		if backoff > 64*time.Millisecond {
			backoff = 64 * time.Millisecond
		}
	}
	b := run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged: %v vs %v", a, b)
		}
	}
	c := run(1337)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical backoff schedules")
	}
}

// TestStartScrubberCtxDrains: cancelling the context must let an
// in-flight scrub finish (drain), and no new pass may start afterwards.
func TestStartScrubberCtxDrains(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{})
	if _, err := s.Commit(1, payload(1, 300)); err != nil {
		t.Fatal(err)
	}

	entered := make(chan struct{}, 64)
	release := make(chan struct{})
	var mu sync.Mutex
	finished := 0
	ctx, cancel := context.WithCancel(context.Background())
	stop := s.StartScrubberCtx(ctx, time.Millisecond, ScrubOptions{Verify: func([]byte) error {
		entered <- struct{}{}
		<-release
		mu.Lock()
		finished++
		mu.Unlock()
		return nil
	}})

	<-entered // a pass is mid-flight
	cancel()  // cancel while it runs
	close(release)
	stop() // must block until the in-flight pass drains, then return

	mu.Lock()
	got := finished
	mu.Unlock()
	if got == 0 {
		t.Fatal("in-flight scrub was not drained")
	}
	// No pass may start after cancellation.
	n := len(entered)
	time.Sleep(20 * time.Millisecond)
	if len(entered) != n {
		t.Fatal("scrubber kept running after context cancellation")
	}
}

// TestScrubRacesReplicatedRestore: a scrubber quarantining a corrupt
// generation on one replica while restores stream from the store must
// never fail a restore or deadlock (-race clean is part of the
// acceptance bar).
func TestScrubRacesReplicatedRestore(t *testing.T) {
	root := t.TempDir()
	r := openRepl(t, root, 3, 2, nil)
	defer r.Wait()
	want := payload(1, 4000)
	gen, err := r.Commit(1, want)
	if err != nil {
		t.Fatal(err)
	}
	r.Wait()

	var wg sync.WaitGroup
	stopAt := time.Now().Add(300 * time.Millisecond)
	// Corruptor: keeps re-corrupting replica 0's copy at rest.
	wg.Add(1)
	go func() {
		defer wg.Done()
		ffs := NewFaultFS(OsFS{})
		path := filepath.Join(root, "r0", genName(gen.Seq))
		for time.Now().Before(stopAt) {
			_ = ffs.CorruptAtRest(path, Fault{Kind: BitFlip, FlipByte: 7})
			time.Sleep(2 * time.Millisecond)
		}
	}()
	// Scrubber: audits and heals concurrently.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for time.Now().Before(stopAt) {
			if _, err := r.Scrub(ScrubOptions{}); err != nil {
				t.Errorf("scrub: %v", err)
				return
			}
		}
	}()
	// Restorer: every read must succeed with verified, bit-exact bytes.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for time.Now().Before(stopAt) {
			latest, ok := r.Latest()
			if !ok {
				t.Error("latest vanished during scrub race")
				return
			}
			got, err := r.ReadGeneration(latest.Seq)
			if err != nil || !bytes.Equal(got, want) {
				t.Errorf("restore during scrub race: %v", err)
				return
			}
		}
	}()
	wg.Wait()
}
