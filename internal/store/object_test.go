package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// openObject opens a store on the object backend with test-friendly
// options.
func openObject(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	opts.Backend = BackendObject
	if opts.Sleep == nil {
		opts.Sleep = noSleep
	}
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(object) %s: %v", dir, err)
	}
	return s
}

// TestObjectBackendRoundTrip: commits, reads, retention and reopen on
// the flat-key pointer-swap layout.
func TestObjectBackendRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openObject(t, dir, Options{Keep: 2})
	for i := 1; i <= 4; i++ {
		if _, err := s.Commit(i*10, payload(i, 400*i)); err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}
	gens := s.Generations()
	if len(gens) != 2 || gens[0].Seq != 3 || gens[1].Seq != 4 {
		t.Fatalf("retention ring wrong: %+v", gens)
	}
	got, err := s.ReadGeneration(4)
	if err != nil || !bytes.Equal(got, payload(4, 1600)) {
		t.Fatalf("read gen 4: %v", err)
	}

	// No temp files, no rename: the layout is flat keys plus CURRENT.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	sawPointer := false
	for _, e := range ents {
		name := e.Name()
		if strings.HasSuffix(name, tmpSuffix) {
			t.Fatalf("object layout contains temp file %s", name)
		}
		if name == pointerName {
			sawPointer = true
		}
	}
	if !sawPointer {
		t.Fatal("no CURRENT pointer record in object layout")
	}

	// Reopen: same state, no rebuild.
	s2 := openObject(t, dir, Options{Keep: 2})
	if s2.Rebuilt() {
		t.Fatal("clean reopen rebuilt the manifest")
	}
	if got, err := s2.ReadGeneration(3); err != nil || !bytes.Equal(got, payload(3, 1200)) {
		t.Fatalf("read gen 3 after reopen: %v", err)
	}
}

// TestObjectBackendTornPointerRecovers: a torn CURRENT overwrite fails
// the pointer CRC; recovery must adopt the newest decodable manifest
// object, not lose the store.
func TestObjectBackendTornPointerRecovers(t *testing.T) {
	dir := t.TempDir()
	s := openObject(t, dir, Options{})
	if _, err := s.Commit(1, payload(1, 600)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Commit(2, payload(2, 700)); err != nil {
		t.Fatal(err)
	}
	// Tear the pointer at rest (torn in-place overwrite loses the tail).
	ffs := NewFaultFS(OsFS{})
	if err := ffs.CorruptAtRest(filepath.Join(dir, pointerName), Fault{Kind: Truncate, TornBytes: 9}); err != nil {
		t.Fatal(err)
	}
	s2 := openObject(t, dir, Options{})
	latest, ok := s2.Latest()
	if !ok || latest.Seq != 2 {
		t.Fatalf("latest after torn pointer = %+v ok=%v", latest, ok)
	}
	if got, err := s2.ReadGeneration(2); err != nil || !bytes.Equal(got, payload(2, 700)) {
		t.Fatalf("gen 2 after torn pointer: %v", err)
	}
}

// TestObjectBackendScrubQuarantine: scrub on the object backend parks
// corrupt payloads under quarantine.-prefixed keys.
func TestObjectBackendScrubQuarantine(t *testing.T) {
	dir := t.TempDir()
	s := openObject(t, dir, Options{})
	if _, err := s.Commit(1, payload(1, 500)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Commit(2, payload(2, 500)); err != nil {
		t.Fatal(err)
	}
	ffs := NewFaultFS(OsFS{})
	if err := ffs.CorruptAtRest(filepath.Join(dir, genName(1)), Fault{Kind: BitFlip, FlipByte: 42}); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Scrub(ScrubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Quarantined) != 1 || rep.Quarantined[0].Seq != 1 || rep.Quarantined[0].Reason != "crc" {
		t.Fatalf("scrub report: %+v", rep)
	}
	if !strings.HasPrefix(rep.Quarantined[0].Path, objQuarantinePrefix) {
		t.Fatalf("quarantine key %q lacks prefix", rep.Quarantined[0].Path)
	}
	if _, err := os.Stat(filepath.Join(dir, rep.Quarantined[0].Path)); err != nil {
		t.Fatalf("quarantined object missing: %v", err)
	}
	if _, err := s.ReadGeneration(2); err != nil {
		t.Fatalf("healthy gen lost by scrub: %v", err)
	}
}

// TestObjectCrashMatrix is the kill-at-every-write-boundary harness for
// the pointer-swap commit protocol: after a crash at any counted
// operation of a commit, reopening must yield bit-exact either the
// prior or the interrupted generation — the pointer CRC plus the
// newest-decodable-manifest fallback make a torn swap recoverable.
func TestObjectCrashMatrix(t *testing.T) {
	old := payload(1, 3000)
	new_ := payload(2, 3500)

	baseline := t.TempDir()
	s0 := openObject(t, baseline, Options{})
	if _, err := s0.Commit(10, old); err != nil {
		t.Fatal(err)
	}

	probeDir := copyDir(t, baseline)
	probe := NewFaultFS(OsFS{})
	sp := openObject(t, probeDir, Options{FS: probe})
	preOps := probe.Ops()
	if _, err := sp.Commit(20, new_); err != nil {
		t.Fatal(err)
	}
	commitOps := probe.Ops() - preOps
	if commitOps < 8 {
		t.Fatalf("suspiciously few ops per object commit: %d (journal %v)", commitOps, probe.Journal())
	}

	crashes, recoveredOld, recoveredNew := 0, 0, 0
	for k := 1; k <= commitOps; k++ {
		for _, tear := range []bool{false, true} {
			fault := Fault{Kind: Crash}
			name := "crash"
			if tear {
				fault = Fault{Kind: TornWrite, TornBytes: 11}
				name = "torn"
			}
			dir := copyDir(t, baseline)
			ffs := NewFaultFS(OsFS{})
			s := openObject(t, dir, Options{FS: ffs})
			ffs.FailAt(ffs.Ops()+k, fault)
			_, commitErr := s.Commit(20, new_)
			if !ffs.Crashed() {
				if commitErr != nil {
					t.Fatalf("k=%d %s: no crash but commit failed: %v", k, name, commitErr)
				}
				continue
			}
			crashes++

			s2 := openObject(t, dir, Options{})
			latest, ok := s2.Latest()
			if !ok {
				t.Fatalf("k=%d %s: store lost all generations\njournal: %v", k, name, ffs.Journal())
			}
			got, err := s2.ReadGeneration(latest.Seq)
			if err != nil {
				t.Fatalf("k=%d %s: latest generation %d unreadable: %v\njournal: %v",
					k, name, latest.Seq, err, ffs.Journal())
			}
			switch {
			case bytes.Equal(got, old):
				recoveredOld++
			case bytes.Equal(got, new_):
				recoveredNew++
			default:
				t.Fatalf("k=%d %s: recovered payload matches neither generation (%d bytes)\njournal: %v",
					k, name, len(got), ffs.Journal())
			}
			if _, err := s2.ReadGeneration(1); err != nil {
				t.Fatalf("k=%d %s: prior generation lost: %v", k, name, err)
			}
		}
	}
	if crashes == 0 {
		t.Fatal("harness injected no crashes")
	}
	if recoveredOld+recoveredNew != crashes {
		t.Fatalf("accounting mismatch: crashes=%d old=%d new=%d", crashes, recoveredOld, recoveredNew)
	}
	t.Logf("object crash matrix: %d ops per commit, %d crash points, %d recovered prior, %d recovered new",
		commitOps, crashes, recoveredOld, recoveredNew)
}

// TestParseBackend covers the CLI-facing name round trip.
func TestParseBackend(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want BackendKind
		err  bool
	}{
		{"", BackendPosix, false},
		{"posix", BackendPosix, false},
		{"object", BackendObject, false},
		{"s3", 0, true},
	} {
		got, err := ParseBackend(tc.in)
		if tc.err != (err != nil) || (!tc.err && got != tc.want) {
			t.Fatalf("ParseBackend(%q) = %v, %v", tc.in, got, err)
		}
	}
	if BackendObject.String() != "object" || BackendPosix.String() != "posix" {
		t.Fatal("BackendKind.String mismatch")
	}
}

// TestPointerRejectsGarbage spot-checks the decoder paths the fuzzer
// also walks, so failures are caught even in -run smoke mode.
func TestPointerRejectsGarbage(t *testing.T) {
	if _, err := DecodePointer(nil); !errors.Is(err, ErrPointer) {
		t.Fatalf("nil: %v", err)
	}
	valid := EncodePointer(9)
	if v, err := DecodePointer(valid); err != nil || v != 9 {
		t.Fatalf("valid: %d %v", v, err)
	}
	for pos := 0; pos < len(valid); pos++ {
		mut := append([]byte(nil), valid...)
		mut[pos] ^= 0x01
		if _, err := DecodePointer(mut); !errors.Is(err, ErrPointer) {
			t.Fatalf("flip at %d accepted", pos)
		}
	}
	if _, err := DecodePointer(valid[:10]); !errors.Is(err, ErrPointer) {
		t.Fatal("short record accepted")
	}
}
