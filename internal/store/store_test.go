package store

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// payload fabricates a distinguishable checkpoint payload.
func payload(gen int, size int) []byte {
	b := make([]byte, size)
	for i := range b {
		b[i] = byte(gen*31 + i)
	}
	return b
}

func noSleep(time.Duration) {}

func openTest(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	opts.Sleep = noSleep
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s
}

func TestCommitReadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{})
	want := payload(1, 4096)
	gen, err := s.Commit(7, want)
	if err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if gen.Seq != 1 || gen.Step != 7 {
		t.Fatalf("gen = %+v, want seq 1 step 7", gen)
	}
	got, err := s.ReadGeneration(gen.Seq)
	if err != nil {
		t.Fatalf("ReadGeneration: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("payload mismatch after round trip")
	}

	// A fresh Open sees the same state.
	s2 := openTest(t, dir, Options{})
	if s2.Rebuilt() {
		t.Fatal("clean reopen should not need a manifest rebuild")
	}
	latest, ok := s2.Latest()
	if !ok || latest.Seq != 1 || latest.Step != 7 {
		t.Fatalf("reopened latest = %+v ok=%v", latest, ok)
	}
	got, err = s2.ReadGeneration(1)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("reopened read: %v", err)
	}
}

func TestRetentionRing(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{Keep: 3})
	for i := 1; i <= 5; i++ {
		if _, err := s.Commit(i, payload(i, 512)); err != nil {
			t.Fatalf("Commit %d: %v", i, err)
		}
	}
	gens := s.Generations()
	if len(gens) != 3 {
		t.Fatalf("retained %d generations, want 3", len(gens))
	}
	for i, g := range gens {
		wantSeq := uint64(i + 3)
		if g.Seq != wantSeq {
			t.Fatalf("gens[%d].Seq = %d, want %d", i, g.Seq, wantSeq)
		}
	}
	// Pruned files are actually gone.
	if _, err := os.Stat(filepath.Join(dir, genName(1))); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("pruned generation 1 still on disk: %v", err)
	}
	// Retained payloads intact.
	for i := 3; i <= 5; i++ {
		got, err := s.ReadGeneration(uint64(i))
		if err != nil || !bytes.Equal(got, payload(i, 512)) {
			t.Fatalf("generation %d: %v", i, err)
		}
	}
}

func TestManifestLossRecovery(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{})
	want := payload(2, 2048)
	if _, err := s.Commit(1, payload(1, 1024)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Commit(2, want); err != nil {
		t.Fatal(err)
	}

	for name, corrupt := range map[string]func() error{
		"deleted": func() error { return os.Remove(filepath.Join(dir, manifestName)) },
		"truncated": func() error {
			raw, err := os.ReadFile(filepath.Join(dir, manifestName))
			if err != nil {
				return err
			}
			return os.WriteFile(filepath.Join(dir, manifestName), raw[:len(raw)/2], 0o644)
		},
		"bitflipped": func() error {
			raw, err := os.ReadFile(filepath.Join(dir, manifestName))
			if err != nil {
				return err
			}
			raw[len(raw)/2] ^= 0x40
			return os.WriteFile(filepath.Join(dir, manifestName), raw, 0o644)
		},
	} {
		t.Run(name, func(t *testing.T) {
			if err := corrupt(); err != nil {
				t.Fatal(err)
			}
			s2 := openTest(t, dir, Options{})
			if !s2.Rebuilt() {
				t.Fatal("expected a manifest rebuild")
			}
			latest, ok := s2.Latest()
			if !ok || latest.Seq != 2 {
				t.Fatalf("latest after rebuild = %+v ok=%v", latest, ok)
			}
			got, err := s2.ReadGeneration(2)
			if err != nil || !bytes.Equal(got, want) {
				t.Fatalf("read after rebuild: %v", err)
			}
		})
	}
}

func TestBitFlipDetected(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OsFS{})
	s := openTest(t, dir, Options{FS: ffs})
	if _, err := s.Commit(1, payload(1, 1024)); err != nil {
		t.Fatal(err)
	}
	// Commit op sequence: create, write, sync, close, rename, syncdir,
	// then the manifest's own six. Flip a bit mid-payload (op +2).
	ffs.FailAt(ffs.Ops()+2, Fault{Kind: BitFlip, FlipByte: 512, FlipBit: 2})
	if _, err := s.Commit(2, payload(2, 1024)); err != nil {
		t.Fatalf("BitFlip commit should succeed silently: %v", err)
	}
	if _, err := s.ReadGeneration(2); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("ReadGeneration on flipped payload = %v, want ErrCorrupt", err)
	}
	// Raw read still yields the bytes for forensic/partial use.
	raw, verified, err := s.ReadGenerationRaw(2)
	if err != nil || verified || len(raw) != 1024 {
		t.Fatalf("ReadGenerationRaw = (%d bytes, %v, %v)", len(raw), verified, err)
	}
	// The intact previous generation still verifies.
	if _, err := s.ReadGeneration(1); err != nil {
		t.Fatalf("generation 1 should be intact: %v", err)
	}
}

func TestTransientRetry(t *testing.T) {
	dir := t.TempDir()
	slept := 0
	ffs := NewFaultFS(OsFS{})
	opts := Options{FS: ffs, Sleep: func(time.Duration) { slept++ }}
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Fail several upcoming ops once each; the commit must ride through.
	base := ffs.Ops()
	for _, off := range []int{1, 3, 5} {
		ffs.FailAt(base+off, Fault{Kind: ErrorOnce})
	}
	want := payload(1, 1024)
	if _, err := s.Commit(1, want); err != nil {
		t.Fatalf("Commit with transient faults: %v", err)
	}
	if slept == 0 {
		t.Fatal("expected backoff sleeps")
	}
	got, err := s.ReadGeneration(1)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("read after transient faults: %v", err)
	}
}

func TestRetryGivesUpOnPermanentError(t *testing.T) {
	s := &Store{opts: Options{Retries: 4, BackoffBase: 1, BackoffCap: 2, Sleep: noSleep}.withDefaults()}
	s.opts.Sleep = noSleep
	calls := 0
	err := s.retry("op", func() error { calls++; return errors.New("permanent") })
	if err == nil || calls != 1 {
		t.Fatalf("permanent error retried %d times (err %v)", calls, err)
	}
	calls = 0
	err = s.retry("op", func() error {
		calls++
		if calls < 3 {
			return transientErr{errors.New("flaky")}
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("transient error: calls=%d err=%v", calls, err)
	}
	calls = 0
	err = s.retry("op", func() error { calls++; return transientErr{errors.New("always")} })
	if !IsTransient(err) || calls != s.opts.Retries+1 {
		t.Fatalf("exhausted retries: calls=%d err=%v", calls, err)
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.bin")
	if err := WriteFileAtomicOS(path, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomicOS(path, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "v2" {
		t.Fatalf("read back %q, %v", got, err)
	}
	// A crash mid-write must leave the old contents.
	ffs := NewFaultFS(OsFS{})
	ffs.FailAt(2, Fault{Kind: TornWrite, TornBytes: 1}) // op1 create, op2 write
	if err := WriteFileAtomic(ffs, path, []byte("v3-much-longer")); err == nil {
		t.Fatal("torn atomic write should fail")
	}
	got, err = os.ReadFile(path)
	if err != nil || string(got) != "v2" {
		t.Fatalf("after torn write: %q, %v (old contents must survive)", got, err)
	}
}

func TestOpenSweepsLeftovers(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{})
	if _, err := s.Commit(1, payload(1, 256)); err != nil {
		t.Fatal(err)
	}
	// Simulate crash debris: a temp file and a renamed-but-unindexed
	// generation.
	if err := os.WriteFile(filepath.Join(dir, genName(9)+tmpSuffix), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, genName(7)), []byte("orphan"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := openTest(t, dir, Options{})
	if s2.Rebuilt() {
		t.Fatal("manifest is intact; no rebuild expected")
	}
	for _, name := range []string{genName(9) + tmpSuffix, genName(7)} {
		if _, err := os.Stat(filepath.Join(dir, name)); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("%s not swept: %v", name, err)
		}
	}
	if got, err := s2.ReadGeneration(1); err != nil || !bytes.Equal(got, payload(1, 256)) {
		t.Fatalf("indexed generation harmed by sweep: %v", err)
	}
}

func TestCommitFuncAndChunkedPayload(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{})
	// Payload larger than one commit chunk exercises the chunked write
	// loop.
	want := payload(3, commitChunk+commitChunk/2)
	gen, err := s.CommitFunc(3, func(w io.Writer) error {
		half := len(want) / 2
		if _, err := w.Write(want[:half]); err != nil {
			return err
		}
		_, err := w.Write(want[half:])
		return err
	})
	if err != nil {
		t.Fatalf("CommitFunc: %v", err)
	}
	got, err := s.ReadGeneration(gen.Seq)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("chunked payload round trip: %v", err)
	}
}

func TestParseGenName(t *testing.T) {
	for _, tc := range []struct {
		name string
		seq  uint64
		ok   bool
	}{
		{genName(12), 12, true},
		{"gen-00000001.ckpt", 1, true},
		{"gen-.ckpt", 0, false},
		{"gen-12abc.ckpt", 0, false},
		{"MANIFEST", 0, false},
		{"gen-5.ckpt.tmp", 0, false},
	} {
		seq, ok := parseGenName(tc.name)
		if ok != tc.ok || seq != tc.seq {
			t.Errorf("parseGenName(%q) = (%d, %v), want (%d, %v)", tc.name, seq, ok, tc.seq, tc.ok)
		}
	}
}

func TestCrashKillsFS(t *testing.T) {
	ffs := NewFaultFS(OsFS{})
	dir := t.TempDir()
	s := openTest(t, dir, Options{FS: ffs})
	ffs.FailAt(ffs.Ops()+1, Fault{Kind: Crash})
	if _, err := s.Commit(1, payload(1, 64)); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Commit after crash = %v, want ErrCrashed", err)
	}
	if _, err := ffs.Create(filepath.Join(dir, "x")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("dead FS Create = %v, want ErrCrashed", err)
	}
	if !ffs.Crashed() {
		t.Fatal("Crashed() should report true")
	}
}
