package store

import (
	"context"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"lossyckpt/internal/cas"
	"lossyckpt/internal/obs"
	"lossyckpt/internal/obs/journal"
)

// Errors returned by the store.
var (
	// ErrCorrupt indicates a generation file whose size or CRC does not
	// match the manifest record.
	ErrCorrupt = errors.New("store: generation corrupt")
	// ErrNoGeneration indicates the store holds no (matching) generation.
	ErrNoGeneration = errors.New("store: no generation available")
	// ErrSeqConflict indicates a CommitAt/PutGeneration sequence number
	// the store cannot accept (already allocated or indexed).
	ErrSeqConflict = errors.New("store: sequence conflict")
)

const (
	manifestName = "MANIFEST"
	genPrefix    = "gen-"
	genSuffix    = ".ckpt"
	tmpSuffix    = ".tmp"
	// commitChunk is the write granularity of payload files: bounded
	// buffers, and real torn-write boundaries for the crash harness.
	commitChunk = 256 << 10
)

// Options configures a Store.
type Options struct {
	// Keep is the retention ring size: the last Keep generations survive,
	// older ones are pruned after each commit. 0 means 3; negative keeps
	// everything.
	Keep int
	// FS is the filesystem implementation; nil means OsFS.
	FS FS
	// Backend selects the storage layout and commit protocol (default
	// BackendPosix — the rename-as-commit directory backend).
	Backend BackendKind
	// Retries bounds transient-error retries per operation (0 means 4).
	Retries int
	// BackoffBase and BackoffCap shape the capped exponential backoff
	// between retries (0 means 1ms / 100ms).
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// Sleep is the backoff clock, injectable for tests; nil means a
	// context-aware sleep that wakes early when the operation's context
	// is cancelled (see retry.go). An injected Sleep is called as-is and
	// is not interruptible.
	Sleep func(time.Duration)
	// TTL, when positive, stamps every committed generation with an
	// expiry (commit time + TTL); the scrubber prunes expired
	// generations, except the newest one (a store never scrubs itself
	// down to zero restorable checkpoints). 0 disables TTL retention.
	TTL time.Duration
	// TTLSkew is the clock-skew tolerance for TTL pruning: a generation
	// is only pruned once now > expire_at + TTLSkew, so replicas with
	// slightly disagreeing clocks do not ping-pong prune/repair. 0 means
	// 30s; negative means no tolerance.
	TTLSkew time.Duration
	// Now is the wall clock for TTL stamps and expiry checks, injectable
	// for tests; nil means time.Now.
	Now func() time.Time
	// Jitter is the backoff randomness source, returning values in
	// [0,1): each retry sleeps backoff/2 + jitter·backoff/2, so N
	// replicas retrying a shared fault spread out instead of thundering
	// in lockstep. nil means a process-wide seeded source; inject a
	// deterministic func for reproducible tests.
	Jitter func() float64
	// Observer receives store telemetry (commit spans, retry and backoff
	// counters, rescan/sweep events — see observe.go for the names). nil
	// falls back to the process default registry, itself a no-op unless
	// installed.
	Observer *obs.Registry
	// Journal receives flight-recorder wide events (commit operations,
	// quorum votes, read repairs, scrub outcomes). nil falls back to the
	// process default journal, itself a no-op unless installed.
	Journal *journal.Journal
	// Dedup switches commits to the content-addressed path: payloads are
	// cut into content-defined chunks stored once under their SHA-256
	// name, and each generation becomes a small recipe of chunk
	// references (see dedup.go). Reads are dispatched per generation by
	// a manifest flag, so a store can hold a mix of dedup and plain
	// generations and Dedup can be toggled between opens. Off by
	// default; with it off the store's output is byte-identical to a
	// build without the dedup layer.
	Dedup bool
	// DedupChunk overrides the content-defined chunker bounds (zero
	// values mean the cas defaults: 64 KiB min / 256 KiB avg / 1 MiB
	// max). All replicas of one replicated store must agree on these
	// bounds or quorum voting over recipes breaks.
	DedupChunk cas.Config
}

func (o Options) withDefaults() Options {
	if o.Keep == 0 {
		o.Keep = 3
	}
	if o.FS == nil {
		o.FS = OsFS{}
	}
	if o.Retries == 0 {
		o.Retries = 4
	}
	if o.BackoffBase == 0 {
		o.BackoffBase = time.Millisecond
	}
	if o.BackoffCap == 0 {
		o.BackoffCap = 100 * time.Millisecond
	}
	if o.Jitter == nil {
		o.Jitter = defaultJitter
	}
	return o
}

// defaultJitter is the process-wide backoff randomness source, locked
// because replicas of one Replicated store retry concurrently.
var (
	jitterMu   sync.Mutex
	jitterRand = rand.New(rand.NewSource(time.Now().UnixNano()))
)

func defaultJitter() float64 {
	jitterMu.Lock()
	defer jitterMu.Unlock()
	return jitterRand.Float64()
}

// Store is a crash-safe multi-generation checkpoint store rooted at one
// directory (or object-store namespace — see Backend). A mutex
// serializes commits, reads and scrubs, so one Store may be shared by
// goroutines in a process (an interval scrubber runs alongside
// commits); it is still not safe for multiple processes — the
// durability guarantees are about crashes, not concurrent writers.
type Store struct {
	dir  string
	b    Backend
	opts Options

	mu  sync.Mutex // guards man, opCtx and all directory mutations
	man manifest
	// opCtx is the context of the operation currently holding mu (nil
	// outside ctx-aware entry points). The retry ladder reads it so a
	// cancelled request aborts between attempts instead of sleeping out
	// the full capped backoff.
	opCtx context.Context
	// rebuilt records that Open found no valid manifest and recovered
	// the generation index by scanning the directory.
	rebuilt bool
	// dd is the dedup layer's in-memory state (refcount ledger, recipe
	// bookkeeping); always present so a store opened without
	// Options.Dedup can still read and audit dedup generations.
	dd *dedupState
}

// Open opens (creating if needed) the store rooted at dir. A missing or
// corrupt manifest is rebuilt by scanning the generation files, and
// leftover temp files from interrupted commits are swept.
func Open(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if err := opts.DedupChunk.Validate(); err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	s := &Store{dir: dir, opts: opts, dd: newDedupState(opts.DedupChunk)}
	switch opts.Backend {
	case BackendObject:
		s.b = newObjectBackend(dir, opts.FS, s.retry)
	default:
		s.b = newPosixBackend(dir, opts.FS, s.retry)
	}
	if err := s.b.Init(); err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}

	raw, err := s.b.ReadManifest()
	if err == nil {
		if gens, next, derr := DecodeManifest(raw); derr == nil {
			s.man = manifest{NextSeq: next, Gens: gens}
		} else {
			err = derr
		}
	}
	if err != nil {
		// Manifest missing, unreadable or corrupt: recover the index
		// from the generation files themselves.
		if rerr := s.rescan(0); rerr != nil {
			return nil, fmt.Errorf("store: open %s: rescan: %w", dir, rerr)
		}
		s.rebuilt = true
		if o := s.observer(); o != nil {
			o.Counter(MetricManifestRebuilds).Inc()
			o.Event("store.manifest_rebuilt", "dir", dir, "generations", len(s.man.Gens))
		}
	}
	s.sweep()
	s.loadDedupLocked()
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Backend returns the storage backend kind this store runs on.
func (s *Store) Backend() BackendKind { return s.b.Kind() }

// Rebuilt reports whether Open had to reconstruct the manifest from a
// directory scan (i.e. the manifest was missing or corrupt).
func (s *Store) Rebuilt() bool { return s.rebuilt }

// Generations returns the retained generations, oldest first.
func (s *Store) Generations() []Generation {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.generationsLocked()
}

func (s *Store) generationsLocked() []Generation {
	return append([]Generation(nil), s.man.Gens...)
}

// Latest returns the newest generation, if any.
func (s *Store) Latest() (Generation, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.man.latest()
}

// NextSeq returns the next sequence number this store would allocate —
// the coordination input for replicated commits.
func (s *Store) NextSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nextSeqLocked()
}

func (s *Store) nextSeqLocked() uint64 {
	if s.man.NextSeq == 0 {
		return 1 // sequence numbers are 1-based so "no generation" is unambiguous
	}
	return s.man.NextSeq
}

// genName returns the file name of a generation.
func genName(seq uint64) string {
	return fmt.Sprintf("%s%08d%s", genPrefix, seq, genSuffix)
}

// GenName returns the file name generation seq is stored under, relative
// to a store's root — the hook external tooling (faultsim's replica-loss
// injector, forensics) uses to address a generation payload directly.
func GenName(seq uint64) string { return genName(seq) }

// parseGenName inverts genName.
func parseGenName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, genPrefix) || !strings.HasSuffix(name, genSuffix) {
		return 0, false
	}
	mid := name[len(genPrefix) : len(name)-len(genSuffix)]
	seq, err := strconv.ParseUint(mid, 10, 64)
	if err != nil || mid == "" {
		return 0, false
	}
	return seq, true
}

// Commit atomically adds payload as the next generation: payload made
// durable through the backend's protocol (temp file → fsync → rename
// for posix; durable PUT for object) → manifest update (the commit
// point) → retention pruning. On any error the store's previous latest
// generation is still intact and indexed.
func (s *Store) Commit(step int, payload []byte) (gen Generation, err error) {
	return s.CommitCtx(context.Background(), step, payload)
}

// CommitCtx is Commit bound to a request context: cancellation aborts
// the commit between retry attempts and backoff sleeps. The previous
// latest generation stays indexed on abort.
func (s *Store) CommitCtx(ctx context.Context, step int, payload []byte) (gen Generation, err error) {
	if step < 0 {
		return Generation{}, fmt.Errorf("store: negative step %d", step)
	}
	if err := ctx.Err(); err != nil {
		return Generation{}, fmt.Errorf("store: commit: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.opCtx = ctx
	defer func() { s.opCtx = nil }()
	if o := s.observer(); o != nil {
		sp := o.StartSpan(MetricCommitSpan, "step", fmt.Sprint(step), "bytes", fmt.Sprint(len(payload)))
		defer func() {
			sp.EndErr(err)
			if err == nil {
				o.Counter(MetricCommitBytes).Add(float64(len(payload)))
			}
		}()
	}
	return s.commitAtLocked(s.nextSeqLocked(), step, s.expireStamp(), func(w io.Writer) error {
		_, werr := w.Write(payload)
		return werr
	})
}

// CommitAt commits payload under a caller-chosen sequence number — the
// replicated-commit entry point, where a coordinator assigns one seq
// across N replicas. seq must be at least the store's NextSeq (a lower
// seq means this replica has already seen newer state: ErrSeqConflict).
func (s *Store) CommitAt(seq uint64, step int, payload []byte) (gen Generation, err error) {
	return s.CommitStreamAt(seq, step, func(w io.Writer) error {
		_, werr := w.Write(payload)
		return werr
	})
}

// countingWriter accumulates the size and CRC of everything written
// through it, so the manifest record is identical whether the payload
// was buffered or streamed.
type countingWriter struct {
	w   io.Writer
	n   uint64
	crc uint32
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	if n > 0 {
		c.crc = crc32.Update(c.crc, crc32.IEEETable, p[:n])
		c.n += uint64(n)
	}
	return n, err
}

// ctxFailWriter fails writes once ctx is dead, so a cancelled commit
// aborts at the next chunk boundary instead of streaming on.
type ctxFailWriter struct {
	ctx context.Context
	w   io.Writer
}

func (c ctxFailWriter) Write(p []byte) (int, error) {
	if err := c.ctx.Err(); err != nil {
		return 0, err
	}
	return c.w.Write(p)
}

// commitAtLocked is the shared commit core: stream the payload through
// the backend's PayloadWriter, publish it, then make the manifest
// update — the commit point — and prune the retention ring. The caller
// holds s.mu and has validated seq.
func (s *Store) commitAtLocked(seq uint64, step int, expireAt int64, feed func(io.Writer) error) (gen Generation, err error) {
	// One flight-recorder wide event per commit, with a progress
	// breadcrumb at each durability milestone so a kill leaves the stage
	// reached and bytes committed on record.
	jop := s.journal().Begin("store.commit", "dir", s.dir, "backend", s.b.Kind().String())
	if jop != nil {
		jop.SetSeq(seq)
		jop.SetStep(step)
		defer func() { jop.End(err) }()
	}
	if s.opts.Dedup {
		return s.commitDedupLocked(seq, step, expireAt, feed, jop)
	}
	pw, err := s.b.BeginPayload(seq)
	if err != nil {
		return Generation{}, err
	}
	// A ctx-bound commit refuses further payload chunks — and the
	// durability flush below — once its context dies: the abort path
	// still runs (cleanup ops ignore the dead request context), so a
	// cancelled commit removes its partial payload instead of littering.
	ctx := s.retryCtx()
	cw := &countingWriter{w: pw}
	var sink io.Writer = cw
	if ctx.Done() != nil {
		sink = ctxFailWriter{ctx: ctx, w: cw}
	}
	if err := feed(sink); err != nil {
		pw.Abort()
		return Generation{}, fmt.Errorf("store: commit gen %d: stream: %w", seq, err)
	}
	if cerr := ctx.Err(); cerr != nil {
		pw.Abort()
		return Generation{}, fmt.Errorf("store: commit gen %d: %w", seq, cerr)
	}
	jop.Progress("payload_streamed", int64(cw.n))
	if err := pw.Commit(); err != nil {
		return Generation{}, fmt.Errorf("store: commit gen %d: %w", seq, err)
	}
	jop.Progress("payload_durable", int64(cw.n))

	gen = Generation{
		Seq:      seq,
		Step:     uint64(step),
		Size:     cw.n,
		CRC:      cw.crc,
		ExpireAt: expireAt,
	}
	// The manifest update is the commit point: before it, the store
	// still indexes the previous latest; after it, the new generation is
	// the latest-good.
	next := manifest{NextSeq: seq + 1, Gens: append(s.generationsLocked(), gen)}
	var dropped []Generation
	if s.opts.Keep > 0 && len(next.Gens) > s.opts.Keep {
		cut := len(next.Gens) - s.opts.Keep
		dropped = append(dropped, next.Gens[:cut]...)
		next.Gens = append([]Generation(nil), next.Gens[cut:]...)
	}
	if err := s.writeManifest(next); err != nil {
		return Generation{}, fmt.Errorf("store: commit gen %d: manifest: %w", seq, err)
	}
	s.man = next

	// Prune outside the ring, best effort: a leftover file is garbage,
	// not corruption, and the next Open sweeps unindexed generations too.
	for _, g := range dropped {
		s.releaseGenLocked(g)
	}
	if o := s.observer(); o != nil && len(dropped) > 0 {
		o.Counter(MetricPrunedGens).Add(float64(len(dropped)))
	}
	jop.SetBytes(int64(cw.n), int64(cw.n))
	return gen, nil
}

// CommitFunc buffers write's output and commits it as one generation —
// the bridge for writers like ckpt.Manager.Checkpoint.
func (s *Store) CommitFunc(step int, write func(io.Writer) error) (Generation, error) {
	return s.CommitFuncCtx(context.Background(), step, write)
}

// CommitFuncCtx is CommitFunc bound to a request context.
func (s *Store) CommitFuncCtx(ctx context.Context, step int, write func(io.Writer) error) (Generation, error) {
	var buf payloadBuffer
	if err := write(&buf); err != nil {
		return Generation{}, err
	}
	return s.CommitCtx(ctx, step, buf.b)
}

// now resolves the store's wall clock.
func (s *Store) now() time.Time {
	if s.opts.Now != nil {
		return s.opts.Now()
	}
	return time.Now()
}

// ttlSkewSeconds resolves the clock-skew tolerance for expiry checks.
func (s *Store) ttlSkewSeconds() int64 {
	switch {
	case s.opts.TTLSkew > 0:
		return int64(s.opts.TTLSkew / time.Second)
	case s.opts.TTLSkew < 0:
		return 0
	default:
		return 30
	}
}

// expireStamp returns the expiry second for a generation committed now
// (0 when TTL retention is off).
func (s *Store) expireStamp() int64 {
	if s.opts.TTL <= 0 {
		return 0
	}
	return s.now().Add(s.opts.TTL).Unix()
}

type payloadBuffer struct{ b []byte }

func (p *payloadBuffer) Write(q []byte) (int, error) {
	p.b = append(p.b, q...)
	return len(q), nil
}

// PutGeneration installs an externally known generation record plus its
// payload — the read-repair primitive: a replica that missed or
// corrupted gen receives the quorum-agreed copy. The payload must match
// the record's size and CRC. An existing record for the same sequence
// number is replaced (the caller is authoritative); NextSeq only ever
// moves forward.
func (s *Store) PutGeneration(gen Generation, payload []byte) error {
	if uint64(len(payload)) != gen.Size || crc32.ChecksumIEEE(payload) != gen.CRC {
		return fmt.Errorf("%w: put gen %d: payload does not match record", ErrCorrupt, gen.Seq)
	}
	if gen.Seq == 0 {
		return fmt.Errorf("%w: put gen 0", ErrSeqConflict)
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	var putRefs []cas.Ref
	var putRecipeLen int64
	if gen.Dedup() {
		// The record says this generation is stored as a recipe, so
		// re-chunk the logical payload: chunking is deterministic, so
		// the repaired replica converges on the identical recipe and
		// chunk set as its peers.
		refs, rlen, err := s.putDedupLocked(gen.Seq, payload)
		if err != nil {
			return err
		}
		putRefs, putRecipeLen = refs, rlen
	} else {
		pw, err := s.b.BeginPayload(gen.Seq)
		if err != nil {
			return err
		}
		if _, err := pw.Write(payload); err != nil {
			pw.Abort()
			return err
		}
		if err := pw.Commit(); err != nil {
			return fmt.Errorf("store: put gen %d: %w", gen.Seq, err)
		}
	}

	gens := s.generationsLocked()
	replaced := false
	for i := range gens {
		if gens[i].Seq == gen.Seq {
			// Replacing an indexed dedup record: release the old recipe's
			// references before adopting the new ones.
			if gens[i].Dedup() {
				if old, ok := s.dd.recipes[gen.Seq]; ok {
					for _, h := range s.dd.idx.Release(old) {
						s.b.RemoveChunk(h.String())
					}
					s.detachRecipeLocked(gen.Seq)
				}
			}
			gens[i] = gen
			replaced = true
			break
		}
	}
	if !replaced {
		gens = append(gens, gen)
		sort.Slice(gens, func(i, j int) bool { return gens[i].Seq < gens[j].Seq })
	}
	next := s.man.NextSeq
	if gen.Seq+1 > next {
		next = gen.Seq + 1
	}
	m := manifest{NextSeq: next, Gens: gens}
	if err := s.writeManifest(m); err != nil {
		return fmt.Errorf("store: put gen %d: manifest: %w", gen.Seq, err)
	}
	s.man = m
	if gen.Dedup() {
		s.dd.idx.Add(putRefs)
		s.dd.recipes[gen.Seq] = putRefs
		s.dd.recipeBytes[gen.Seq] = putRecipeLen
	}
	return nil
}

// putDedupLocked materializes a dedup generation from its logical
// payload: chunk, write missing chunks, commit the recipe. Returns the
// chunk references and recipe size for the caller's bookkeeping (index
// updates happen only after the manifest commits).
func (s *Store) putDedupLocked(seq uint64, payload []byte) ([]cas.Ref, int64, error) {
	chunks, err := cas.Split(s.dd.cfg, payload)
	if err != nil {
		return nil, 0, fmt.Errorf("store: put gen %d: %w", seq, err)
	}
	refs := make([]cas.Ref, 0, len(chunks))
	staged := make(map[cas.Hash]bool)
	for _, chunk := range chunks {
		h := cas.Sum(chunk)
		refs = append(refs, cas.Ref{Hash: h, Len: uint32(len(chunk))})
		if staged[h] {
			continue
		}
		// The ledger is not trusted here: a repair runs precisely because
		// some referenced chunk is missing or corrupt on disk, and a
		// quarantined recipe keeps that hash referenced. Verify the durable
		// copy and rewrite anything that does not check out.
		if s.dd.idx.Has(h) {
			if cdata, cerr := s.b.ReadChunk(h.String()); cerr == nil && cas.Sum(cdata) == h {
				staged[h] = true
				continue
			}
		}
		if werr := s.b.WriteChunk(h.String(), chunk); werr != nil {
			return nil, 0, fmt.Errorf("store: put gen %d: chunk: %w", seq, werr)
		}
		staged[h] = true
	}
	rec := &cas.Recipe{Size: uint64(len(payload)), CRC: crc32.ChecksumIEEE(payload), Chunks: refs}
	raw := rec.Encode()
	pw, err := s.b.BeginPayload(seq)
	if err != nil {
		return nil, 0, err
	}
	if _, werr := pw.Write(raw); werr != nil {
		pw.Abort()
		return nil, 0, fmt.Errorf("store: put gen %d: recipe: %w", seq, werr)
	}
	if cerr := pw.Commit(); cerr != nil {
		return nil, 0, fmt.Errorf("store: put gen %d: recipe: %w", seq, cerr)
	}
	return refs, int64(len(raw)), nil
}

// Drop removes a generation's payload and manifest record — retention
// cleanup for replicas holding generations their peers have pruned.
// Unlike Quarantine it destroys the payload; use it only for
// generations the caller knows are obsolete.
func (s *Store) Drop(seq uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	gens := s.generationsLocked()
	kept := gens[:0]
	found := false
	var dropGen Generation
	for _, g := range gens {
		if g.Seq == seq {
			found = true
			dropGen = g
			continue
		}
		kept = append(kept, g)
	}
	if !found {
		return fmt.Errorf("%w: generation %d", ErrNoGeneration, seq)
	}
	m := manifest{NextSeq: s.man.NextSeq, Gens: append([]Generation(nil), kept...)}
	if err := s.writeManifest(m); err != nil {
		return fmt.Errorf("store: drop gen %d: manifest: %w", seq, err)
	}
	s.man = m
	s.releaseGenLocked(dropGen)
	return nil
}

// ReadGeneration returns the payload of generation seq after verifying
// its size and CRC against the manifest; a mismatch returns ErrCorrupt.
func (s *Store) ReadGeneration(seq uint64) ([]byte, error) {
	data, ok, err := s.ReadGenerationRaw(seq)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("%w: generation %d fails size/CRC verification", ErrCorrupt, seq)
	}
	return data, nil
}

// ReadGenerationRaw returns generation seq's bytes plus whether they
// verify against the manifest record. Torn tails come back with
// verified=false so frame-level partial recovery can still mine them.
func (s *Store) ReadGenerationRaw(seq uint64) (data []byte, verified bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var gen *Generation
	for i := range s.man.Gens {
		if s.man.Gens[i].Seq == seq {
			gen = &s.man.Gens[i]
			break
		}
	}
	if gen == nil {
		return nil, false, fmt.Errorf("%w: generation %d", ErrNoGeneration, seq)
	}
	if gen.Dedup() {
		data, verified, err = s.readDedupLocked(*gen)
		if err != nil {
			return nil, false, err
		}
	} else {
		data, err = s.b.ReadPayload(seq)
		if err != nil {
			return nil, false, fmt.Errorf("store: read gen %d: %w", seq, err)
		}
		verified = uint64(len(data)) == gen.Size && crc32.ChecksumIEEE(data) == gen.CRC
	}
	if o := s.observer(); o != nil {
		o.Counter(MetricReads, "verified", strconv.FormatBool(verified)).Inc()
		if !verified {
			o.Event("store.read_unverified", "seq", seq, "bytes", len(data))
		}
	}
	return data, verified, nil
}

// Record returns the manifest record for generation seq, if indexed.
func (s *Store) Record(seq uint64) (Generation, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, g := range s.man.Gens {
		if g.Seq == seq {
			return g, true
		}
	}
	return Generation{}, false
}

// writeManifest persists m through the backend's atomic protocol.
func (s *Store) writeManifest(m manifest) error {
	return s.b.WriteManifest(m.encode())
}

// rescan rebuilds the manifest by scanning generation files: the
// recovery path for a lost or corrupt manifest. Sizes and CRCs are
// recomputed from the files, so a torn generation tail records as-is
// and later fails ReadGeneration verification only if it was also
// indexed before — after a rescan the files are the source of truth.
// NextSeq never drops below minNext, so a rebuild triggered after the
// newest generation left the directory (quarantine) cannot reuse its
// sequence number against a file still sitting in quarantine/.
func (s *Store) rescan(minNext uint64) error {
	seqs, err := s.b.ListPayloads()
	if err != nil {
		return err
	}
	prior := make(map[uint64]Generation, len(s.man.Gens))
	for _, g := range s.man.Gens {
		prior[g.Seq] = g
	}
	var gens []Generation
	var maxSeq uint64
	for _, seq := range seqs {
		data, err := s.b.ReadPayload(seq)
		if err != nil {
			continue // unreadable generation: skip, don't fail recovery
		}
		g := Generation{
			Seq:  seq,
			Size: uint64(len(data)),
			CRC:  crc32.ChecksumIEEE(data),
		}
		// A payload that decodes as a chunk recipe is a dedup generation:
		// record the LOGICAL size/CRC from the recipe header and restore
		// the flag, so the rebuilt manifest keeps the read path
		// dispatching correctly. (Recipes carry a magic plus a trailing
		// CRC, so a plain payload cannot masquerade as one.)
		if rec, derr := cas.DecodeRecipe(data); derr == nil {
			g.Size = rec.Size
			g.CRC = rec.CRC
			g.Flags = GenFlagDedup
		}
		// The payload bytes carry no step number or expiry; when the old
		// index still matches the file, keep both instead of zeroing
		// them. A generation whose stamp is lost becomes immortal — the
		// fail-safe direction: recovery never invents a reason to delete.
		if p, ok := prior[seq]; ok && p.Size == g.Size && p.CRC == g.CRC {
			g.Step = p.Step
			g.ExpireAt = p.ExpireAt
		}
		gens = append(gens, g)
		if seq > maxSeq {
			maxSeq = seq
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i].Seq < gens[j].Seq })
	next := maxSeq + 1
	if next < minNext {
		next = minNext
	}
	s.man = manifest{NextSeq: next, Gens: gens}
	// Persist the recovered index; failure is non-fatal (the next Open
	// just rescans again).
	_ = s.writeManifest(s.man)
	return nil
}

// sweep removes commit litter through the backend (temp files, orphan
// manifest versions, payloads no longer indexed).
func (s *Store) sweep() {
	indexed := make(map[uint64]bool, len(s.man.Gens))
	for _, g := range s.man.Gens {
		indexed[g.Seq] = true
	}
	swept := s.b.Sweep(indexed)
	if o := s.observer(); o != nil && swept > 0 {
		o.Counter(MetricSweptFiles).Add(float64(swept))
		o.Event("store.sweep", "dir", s.dir, "removed", swept)
	}
}
