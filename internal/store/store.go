package store

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"lossyckpt/internal/obs"
)

// Errors returned by the store.
var (
	// ErrCorrupt indicates a generation file whose size or CRC does not
	// match the manifest record.
	ErrCorrupt = errors.New("store: generation corrupt")
	// ErrNoGeneration indicates the store holds no (matching) generation.
	ErrNoGeneration = errors.New("store: no generation available")
)

const (
	manifestName = "MANIFEST"
	genPrefix    = "gen-"
	genSuffix    = ".ckpt"
	tmpSuffix    = ".tmp"
	// commitChunk is the write granularity of payload files: bounded
	// buffers, and real torn-write boundaries for the crash harness.
	commitChunk = 256 << 10
)

// Options configures a Store.
type Options struct {
	// Keep is the retention ring size: the last Keep generations survive,
	// older ones are pruned after each commit. 0 means 3; negative keeps
	// everything.
	Keep int
	// FS is the filesystem implementation; nil means OsFS.
	FS FS
	// Retries bounds transient-error retries per operation (0 means 4).
	Retries int
	// BackoffBase and BackoffCap shape the capped exponential backoff
	// between retries (0 means 1ms / 100ms).
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// Sleep is the backoff clock, injectable for tests; nil means
	// time.Sleep.
	Sleep func(time.Duration)
	// Observer receives store telemetry (commit spans, retry and backoff
	// counters, rescan/sweep events — see observe.go for the names). nil
	// falls back to the process default registry, itself a no-op unless
	// installed.
	Observer *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.Keep == 0 {
		o.Keep = 3
	}
	if o.FS == nil {
		o.FS = OsFS{}
	}
	if o.Retries == 0 {
		o.Retries = 4
	}
	if o.BackoffBase == 0 {
		o.BackoffBase = time.Millisecond
	}
	if o.BackoffCap == 0 {
		o.BackoffCap = 100 * time.Millisecond
	}
	if o.Sleep == nil {
		o.Sleep = time.Sleep
	}
	return o
}

// Store is a crash-safe multi-generation checkpoint store rooted at one
// directory. A mutex serializes commits, reads and scrubs, so one Store
// may be shared by goroutines in a process (an interval scrubber runs
// alongside commits); it is still not safe for multiple processes — the
// durability guarantees are about crashes, not concurrent writers.
type Store struct {
	dir  string
	fs   FS
	opts Options

	mu  sync.Mutex // guards man and all directory mutations
	man manifest
	// rebuilt records that Open found no valid manifest and recovered
	// the generation index by scanning the directory.
	rebuilt bool
}

// Open opens (creating if needed) the store rooted at dir. A missing or
// corrupt manifest is rebuilt by scanning the generation files, and
// leftover temp files from interrupted commits are swept.
func Open(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	s := &Store{dir: dir, fs: opts.FS, opts: opts}
	if err := s.retry("mkdir", func() error { return s.fs.MkdirAll(dir) }); err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}

	raw, err := s.readFile(filepath.Join(dir, manifestName))
	if err == nil {
		if gens, next, derr := DecodeManifest(raw); derr == nil {
			s.man = manifest{NextSeq: next, Gens: gens}
		} else {
			err = derr
		}
	}
	if err != nil {
		// Manifest missing, unreadable or corrupt: recover the index
		// from the generation files themselves.
		if rerr := s.rescan(0); rerr != nil {
			return nil, fmt.Errorf("store: open %s: rescan: %w", dir, rerr)
		}
		s.rebuilt = true
		if o := s.observer(); o != nil {
			o.Counter(MetricManifestRebuilds).Inc()
			o.Event("store.manifest_rebuilt", "dir", dir, "generations", len(s.man.Gens))
		}
	}
	s.sweepTemp()
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Rebuilt reports whether Open had to reconstruct the manifest from a
// directory scan (i.e. the manifest was missing or corrupt).
func (s *Store) Rebuilt() bool { return s.rebuilt }

// Generations returns the retained generations, oldest first.
func (s *Store) Generations() []Generation {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.generationsLocked()
}

func (s *Store) generationsLocked() []Generation {
	return append([]Generation(nil), s.man.Gens...)
}

// Latest returns the newest generation, if any.
func (s *Store) Latest() (Generation, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.man.latest()
}

// genName returns the file name of a generation.
func genName(seq uint64) string {
	return fmt.Sprintf("%s%08d%s", genPrefix, seq, genSuffix)
}

// parseGenName inverts genName.
func parseGenName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, genPrefix) || !strings.HasSuffix(name, genSuffix) {
		return 0, false
	}
	mid := name[len(genPrefix) : len(name)-len(genSuffix)]
	seq, err := strconv.ParseUint(mid, 10, 64)
	if err != nil || mid == "" {
		return 0, false
	}
	return seq, true
}

// Commit atomically adds payload as the next generation: temp file →
// fsync → rename into the generation slot → directory fsync → manifest
// update (same protocol) → retention pruning. On any error the store's
// previous latest generation is still intact and indexed.
func (s *Store) Commit(step int, payload []byte) (gen Generation, err error) {
	if step < 0 {
		return Generation{}, fmt.Errorf("store: negative step %d", step)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if o := s.observer(); o != nil {
		sp := o.StartSpan(MetricCommitSpan, "step", fmt.Sprint(step), "bytes", fmt.Sprint(len(payload)))
		defer func() {
			sp.EndErr(err)
			if err == nil {
				o.Counter(MetricCommitBytes).Add(float64(len(payload)))
			}
		}()
	}
	seq := s.man.NextSeq
	if seq == 0 {
		seq = 1 // sequence numbers are 1-based so "no generation" is unambiguous
	}
	final := filepath.Join(s.dir, genName(seq))
	tmp := final + tmpSuffix

	if err := s.writePayload(tmp, payload); err != nil {
		return Generation{}, err
	}
	return s.finishCommit(seq, step, uint64(len(payload)), crc32.ChecksumIEEE(payload), tmp, final)
}

// finishCommit is the shared commit point of Commit and CommitStream: the
// temp file is fully written and synced; rename it into the generation
// slot, fsync the directory, update the manifest and prune the retention
// ring. The caller holds s.mu.
func (s *Store) finishCommit(seq uint64, step int, size uint64, crc uint32, tmp, final string) (Generation, error) {
	if err := s.retry("rename", func() error { return s.fs.Rename(tmp, final) }); err != nil {
		s.fs.Remove(tmp)
		return Generation{}, fmt.Errorf("store: commit gen %d: rename: %w", seq, err)
	}
	if err := s.retry("syncdir", func() error { return s.fs.SyncDir(s.dir) }); err != nil {
		return Generation{}, fmt.Errorf("store: commit gen %d: sync dir: %w", seq, err)
	}

	gen := Generation{
		Seq:  seq,
		Step: uint64(step),
		Size: size,
		CRC:  crc,
	}
	// The manifest rename is the commit point: before it, the store
	// still indexes the previous latest; after it, the new generation is
	// the latest-good.
	next := manifest{NextSeq: seq + 1, Gens: append(s.generationsLocked(), gen)}
	var dropped []Generation
	if s.opts.Keep > 0 && len(next.Gens) > s.opts.Keep {
		cut := len(next.Gens) - s.opts.Keep
		dropped = append(dropped, next.Gens[:cut]...)
		next.Gens = append([]Generation(nil), next.Gens[cut:]...)
	}
	if err := s.writeManifest(next); err != nil {
		return Generation{}, fmt.Errorf("store: commit gen %d: manifest: %w", seq, err)
	}
	s.man = next

	// Prune outside the ring, best effort: a leftover file is garbage,
	// not corruption, and the next Open sweeps unindexed generations too.
	for _, g := range dropped {
		s.fs.Remove(filepath.Join(s.dir, genName(g.Seq)))
	}
	if o := s.observer(); o != nil && len(dropped) > 0 {
		o.Counter(MetricPrunedGens).Add(float64(len(dropped)))
	}
	return gen, nil
}

// CommitFunc buffers write's output and commits it as one generation —
// the bridge for writers like ckpt.Manager.Checkpoint.
func (s *Store) CommitFunc(step int, write func(io.Writer) error) (Generation, error) {
	var buf payloadBuffer
	if err := write(&buf); err != nil {
		return Generation{}, err
	}
	return s.Commit(step, buf.b)
}

type payloadBuffer struct{ b []byte }

func (p *payloadBuffer) Write(q []byte) (int, error) {
	p.b = append(p.b, q...)
	return len(q), nil
}

// ReadGeneration returns the payload of generation seq after verifying
// its size and CRC against the manifest; a mismatch returns ErrCorrupt.
func (s *Store) ReadGeneration(seq uint64) ([]byte, error) {
	data, ok, err := s.ReadGenerationRaw(seq)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("%w: generation %d fails size/CRC verification", ErrCorrupt, seq)
	}
	return data, nil
}

// ReadGenerationRaw returns generation seq's bytes plus whether they
// verify against the manifest record. Torn tails come back with
// verified=false so frame-level partial recovery can still mine them.
func (s *Store) ReadGenerationRaw(seq uint64) (data []byte, verified bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var gen *Generation
	for i := range s.man.Gens {
		if s.man.Gens[i].Seq == seq {
			gen = &s.man.Gens[i]
			break
		}
	}
	if gen == nil {
		return nil, false, fmt.Errorf("%w: generation %d", ErrNoGeneration, seq)
	}
	data, err = s.readFile(filepath.Join(s.dir, genName(seq)))
	if err != nil {
		return nil, false, fmt.Errorf("store: read gen %d: %w", seq, err)
	}
	verified = uint64(len(data)) == gen.Size && crc32.ChecksumIEEE(data) == gen.CRC
	if o := s.observer(); o != nil {
		o.Counter(MetricReads, "verified", strconv.FormatBool(verified)).Inc()
		if !verified {
			o.Event("store.read_unverified", "seq", seq, "bytes", len(data))
		}
	}
	return data, verified, nil
}

// writePayload writes data to path in bounded chunks with fsync before
// close, retrying transient failures per operation.
func (s *Store) writePayload(path string, data []byte) error {
	var f File
	if err := s.retry("create", func() (err error) {
		f, err = s.fs.Create(path)
		return err
	}); err != nil {
		return fmt.Errorf("store: create %s: %w", path, err)
	}
	cleanup := func() {
		f.Close()
		s.fs.Remove(path)
	}
	for off := 0; off < len(data); off += commitChunk {
		end := off + commitChunk
		if end > len(data) {
			end = len(data)
		}
		chunk := data[off:end]
		if err := s.retry("write", func() error {
			_, werr := f.Write(chunk)
			return werr
		}); err != nil {
			cleanup()
			return fmt.Errorf("store: write %s: %w", path, err)
		}
	}
	if err := s.retry("sync", func() error { return f.Sync() }); err != nil {
		cleanup()
		return fmt.Errorf("store: sync %s: %w", path, err)
	}
	if err := s.retry("close", func() error { return f.Close() }); err != nil {
		s.fs.Remove(path)
		return fmt.Errorf("store: close %s: %w", path, err)
	}
	return nil
}

// writeManifest persists m via temp+fsync+rename+dirsync.
func (s *Store) writeManifest(m manifest) error {
	path := filepath.Join(s.dir, manifestName)
	if err := s.writePayload(path+tmpSuffix, m.encode()); err != nil {
		return err
	}
	if err := s.retry("rename", func() error { return s.fs.Rename(path+tmpSuffix, path) }); err != nil {
		s.fs.Remove(path + tmpSuffix)
		return err
	}
	return s.retry("syncdir", func() error { return s.fs.SyncDir(s.dir) })
}

// readFile slurps one file through the FS.
func (s *Store) readFile(path string) ([]byte, error) {
	f, err := s.fs.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

// rescan rebuilds the manifest by scanning generation files: the
// recovery path for a lost or corrupt manifest. Sizes and CRCs are
// recomputed from the files, so a torn generation tail records as-is
// and later fails ReadGeneration verification only if it was also
// indexed before — after a rescan the files are the source of truth.
// NextSeq never drops below minNext, so a rebuild triggered after the
// newest generation left the directory (quarantine) cannot reuse its
// sequence number against a file still sitting in quarantine/.
func (s *Store) rescan(minNext uint64) error {
	names, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return err
	}
	var gens []Generation
	var maxSeq uint64
	for _, name := range names {
		seq, ok := parseGenName(name)
		if !ok {
			continue
		}
		data, err := s.readFile(filepath.Join(s.dir, name))
		if err != nil {
			continue // unreadable generation: skip, don't fail recovery
		}
		gens = append(gens, Generation{
			Seq:  seq,
			Size: uint64(len(data)),
			CRC:  crc32.ChecksumIEEE(data),
		})
		if seq > maxSeq {
			maxSeq = seq
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i].Seq < gens[j].Seq })
	next := maxSeq + 1
	if next < minNext {
		next = minNext
	}
	s.man = manifest{NextSeq: next, Gens: gens}
	// Persist the recovered index; failure is non-fatal (the next Open
	// just rescans again).
	_ = s.writeManifest(s.man)
	return nil
}

// sweepTemp removes leftover temp files from interrupted commits and
// generation files no longer in the manifest (pruned but not removed,
// or renamed but never indexed because the crash hit before the
// manifest update).
func (s *Store) sweepTemp() {
	names, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return
	}
	indexed := make(map[uint64]bool, len(s.man.Gens))
	for _, g := range s.man.Gens {
		indexed[g.Seq] = true
	}
	swept := 0
	for _, name := range names {
		if strings.HasSuffix(name, tmpSuffix) {
			s.fs.Remove(filepath.Join(s.dir, name))
			swept++
			continue
		}
		if seq, ok := parseGenName(name); ok && !indexed[seq] {
			s.fs.Remove(filepath.Join(s.dir, name))
			swept++
		}
	}
	if o := s.observer(); o != nil && swept > 0 {
		o.Counter(MetricSweptFiles).Add(float64(swept))
		o.Event("store.sweep", "dir", s.dir, "removed", swept)
	}
}

// retry runs fn, retrying transient errors with capped exponential
// backoff; permanent errors and exhausted budgets return immediately.
func (s *Store) retry(op string, fn func() error) error {
	backoff := s.opts.BackoffBase
	var err error
	for attempt := 0; ; attempt++ {
		err = fn()
		if err == nil || !IsTransient(err) || attempt >= s.opts.Retries {
			return err
		}
		if o := s.observer(); o != nil {
			o.Counter(MetricRetries, "op", op).Inc()
			o.Counter(MetricBackoffSeconds).Add(backoff.Seconds())
		}
		s.opts.Sleep(backoff)
		backoff *= 2
		if backoff > s.opts.BackoffCap {
			backoff = s.opts.BackoffCap
		}
	}
}
