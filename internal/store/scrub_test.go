package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"lossyckpt/internal/obs"
)

// scrubStore opens a store over a FaultFS (so tests can corrupt files
// at rest) and commits n generations with distinguishable payloads.
func scrubStore(t *testing.T, dir string, n int, opts Options) (*Store, *FaultFS) {
	t.Helper()
	ffs := NewFaultFS(OsFS{})
	opts.FS = ffs
	s := openTest(t, dir, opts)
	for i := 1; i <= n; i++ {
		if _, err := s.Commit(i*10, payload(i, 2048)); err != nil {
			t.Fatalf("Commit %d: %v", i, err)
		}
	}
	return s, ffs
}

func TestScrubCleanStore(t *testing.T) {
	dir := t.TempDir()
	s, _ := scrubStore(t, dir, 3, Options{Keep: -1})
	verifyCalls := 0
	rep, err := s.Scrub(ScrubOptions{Verify: func(data []byte) error {
		verifyCalls++
		return nil
	}})
	if err != nil {
		t.Fatalf("Scrub: %v", err)
	}
	if !rep.Clean() || rep.Checked != 3 {
		t.Fatalf("clean store scrub = %+v, want clean with 3 checked", rep)
	}
	if verifyCalls != 3 {
		t.Fatalf("Verify called %d times, want 3", verifyCalls)
	}
	// Zero false quarantines: everything still restores.
	for seq := uint64(1); seq <= 3; seq++ {
		if _, err := s.ReadGeneration(seq); err != nil {
			t.Fatalf("gen %d unreadable after clean scrub: %v", seq, err)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, QuarantineDir)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("clean scrub created quarantine dir (stat err %v)", err)
	}
}

// TestScrubQuarantineProperty is the acceptance property: for every
// retained generation and every at-rest corruption kind, a scrub
// quarantines exactly the corrupted generation — 100% detection, zero
// false quarantines — and the file survives in quarantine/ rather than
// being deleted. Quarantining the newest generation rebuilds the
// manifest with NextSeq still monotonic.
func TestScrubQuarantineProperty(t *testing.T) {
	faults := []Fault{
		{Kind: BitFlip, FlipByte: 0, FlipBit: 0},
		{Kind: BitFlip, FlipByte: 1027, FlipBit: 6},
		{Kind: BitFlip, FlipByte: 1 << 20, FlipBit: 3}, // clamped to last byte
		{Kind: Truncate, TornBytes: 0},
		{Kind: Truncate, TornBytes: 1},
		{Kind: Truncate, TornBytes: 2047},
	}
	const nGens = 3
	for victim := uint64(1); victim <= nGens; victim++ {
		for _, fault := range faults {
			fault := fault
			t.Run(fmt.Sprintf("gen%d_%s_%d", victim, fault.Kind, fault.TornBytes+fault.FlipByte), func(t *testing.T) {
				t.Parallel()
				dir := t.TempDir()
				s, ffs := scrubStore(t, dir, nGens, Options{Keep: -1})
				preNext := s.man.NextSeq
				if err := ffs.CorruptAtRest(filepath.Join(dir, genName(victim)), fault); err != nil {
					t.Fatalf("CorruptAtRest: %v", err)
				}
				rep, err := s.Scrub(ScrubOptions{})
				if err != nil {
					t.Fatalf("Scrub: %v", err)
				}
				if len(rep.Quarantined) != 1 || rep.Quarantined[0].Seq != victim {
					t.Fatalf("quarantined %+v, want exactly gen %d", rep.Quarantined, victim)
				}
				if len(rep.Missing) != 0 {
					t.Fatalf("unexpected missing gens %v", rep.Missing)
				}
				// Never deleted: the corrupt file lives on in quarantine/.
				qpath := filepath.Join(dir, rep.Quarantined[0].Path)
				if _, err := os.Stat(qpath); err != nil {
					t.Fatalf("quarantined file %s: %v", qpath, err)
				}
				// And it is out of the main directory.
				if _, err := os.Stat(filepath.Join(dir, genName(victim))); !errors.Is(err, os.ErrNotExist) {
					t.Fatalf("corrupt gen file still in store root (stat err %v)", err)
				}
				// Zero false quarantines: the survivors still verify.
				for seq := uint64(1); seq <= nGens; seq++ {
					if seq == victim {
						if _, err := s.ReadGeneration(seq); !errors.Is(err, ErrNoGeneration) {
							t.Fatalf("quarantined gen %d read = %v, want ErrNoGeneration", seq, err)
						}
						continue
					}
					got, err := s.ReadGeneration(seq)
					if err != nil {
						t.Fatalf("surviving gen %d: %v", seq, err)
					}
					if !bytes.Equal(got, payload(int(seq), 2048)) {
						t.Fatalf("surviving gen %d payload mutated", seq)
					}
				}
				if wantRebuild := victim == nGens; rep.ManifestRebuilt != wantRebuild {
					t.Fatalf("ManifestRebuilt = %v, want %v (victim %d of %d)", rep.ManifestRebuilt, wantRebuild, victim, nGens)
				}
				// NextSeq stays monotonic even across a rebuild, so a new
				// commit can never reuse the quarantined sequence number.
				gen, err := s.Commit(99, payload(9, 512))
				if err != nil {
					t.Fatalf("Commit after scrub: %v", err)
				}
				if gen.Seq < preNext {
					t.Fatalf("post-scrub commit got seq %d, want >= %d", gen.Seq, preNext)
				}
				// A second pass over the repaired store finds nothing.
				rep2, err := s.Scrub(ScrubOptions{})
				if err != nil || !rep2.Clean() {
					t.Fatalf("second scrub = %+v, %v; want clean", rep2, err)
				}
				// A fresh Open agrees with the scrubbed state.
				s2 := openTest(t, dir, Options{Keep: -1})
				if _, err := s2.ReadGeneration(victim); !errors.Is(err, ErrNoGeneration) {
					t.Fatalf("reopened store still indexes quarantined gen %d", victim)
				}
			})
		}
	}
}

func TestScrubVerifyCallbackQuarantines(t *testing.T) {
	dir := t.TempDir()
	s, _ := scrubStore(t, dir, 3, Options{Keep: -1})
	// The size/CRC check passes (the file is exactly what was committed);
	// only the content-level verifier knows gen 2's payload is bad.
	bad := payload(2, 2048)
	rep, err := s.Scrub(ScrubOptions{Verify: func(data []byte) error {
		if bytes.Equal(data, bad) {
			return errors.New("stream fails content verification")
		}
		return nil
	}})
	if err != nil {
		t.Fatalf("Scrub: %v", err)
	}
	if len(rep.Quarantined) != 1 || rep.Quarantined[0].Seq != 2 || rep.Quarantined[0].Reason != "verify" {
		t.Fatalf("quarantined %+v, want gen 2 with reason verify", rep.Quarantined)
	}
}

func TestScrubMissingFileDropped(t *testing.T) {
	dir := t.TempDir()
	s, _ := scrubStore(t, dir, 3, Options{Keep: -1})
	if err := os.Remove(filepath.Join(dir, genName(2))); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Scrub(ScrubOptions{})
	if err != nil {
		t.Fatalf("Scrub: %v", err)
	}
	if len(rep.Missing) != 1 || rep.Missing[0] != 2 || len(rep.Quarantined) != 0 {
		t.Fatalf("report %+v, want gen 2 missing and nothing quarantined", rep)
	}
	if _, err := s.ReadGeneration(2); !errors.Is(err, ErrNoGeneration) {
		t.Fatalf("missing gen still indexed: %v", err)
	}
	if _, err := s.ReadGeneration(3); err != nil {
		t.Fatalf("survivor unreadable: %v", err)
	}
}

func TestScrubQuarantineNameCollision(t *testing.T) {
	dir := t.TempDir()
	s, ffs := scrubStore(t, dir, 2, Options{Keep: -1})
	// A previous incident already parked a file under this generation's
	// quarantine name.
	qdir := filepath.Join(dir, QuarantineDir)
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(qdir, genName(1)), []byte("earlier resident"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := ffs.CorruptAtRest(filepath.Join(dir, genName(1)), Fault{Kind: BitFlip}); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Scrub(ScrubOptions{})
	if err != nil {
		t.Fatalf("Scrub: %v", err)
	}
	if len(rep.Quarantined) != 1 {
		t.Fatalf("quarantined %+v, want 1", rep.Quarantined)
	}
	want := filepath.Join(QuarantineDir, genName(1)+".1")
	if rep.Quarantined[0].Path != want {
		t.Fatalf("collision path %q, want %q", rep.Quarantined[0].Path, want)
	}
	// The earlier resident was not clobbered.
	got, err := os.ReadFile(filepath.Join(qdir, genName(1)))
	if err != nil || string(got) != "earlier resident" {
		t.Fatalf("earlier quarantine resident damaged: %q, %v", got, err)
	}
}

func TestScrubMetrics(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	ffs := NewFaultFS(OsFS{})
	s := openTest(t, dir, Options{Keep: -1, FS: ffs, Observer: reg})
	for i := 1; i <= 2; i++ {
		if _, err := s.Commit(i, payload(i, 1024)); err != nil {
			t.Fatal(err)
		}
	}
	if err := ffs.CorruptAtRest(filepath.Join(dir, genName(2)), Fault{Kind: Truncate, TornBytes: 10}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Scrub(ScrubOptions{}); err != nil {
		t.Fatalf("Scrub: %v", err)
	}
	found := map[string]bool{}
	for _, m := range reg.Snapshot().Metrics {
		found[m.Name] = true
	}
	for _, name := range []string{MetricScrubRuns, MetricScrubChecked, MetricScrubQuarantined, MetricManifestRebuilds} {
		if !found[name] {
			t.Errorf("metric %s not recorded; have %v", name, found)
		}
	}
}

// TestScrubberConcurrentWithCommits runs the interval scrubber against a
// committing store under the race detector: the shared mutex must keep
// the manifest coherent, and a clean store must never be quarantined.
func TestScrubberConcurrentWithCommits(t *testing.T) {
	dir := t.TempDir()
	s, _ := scrubStore(t, dir, 1, Options{Keep: 4})
	var reports []*ScrubReport
	stop := s.StartScrubber(500*time.Microsecond, ScrubOptions{Verify: func(data []byte) error {
		if len(data) == 0 {
			return errors.New("empty generation")
		}
		return nil
	}})
	for i := 2; i <= 40; i++ {
		if _, err := s.Commit(i, payload(i, 1024)); err != nil {
			t.Fatalf("Commit %d under scrubber: %v", i, err)
		}
		if i%10 == 0 {
			rep, err := s.Scrub(ScrubOptions{})
			if err != nil {
				t.Fatalf("inline Scrub: %v", err)
			}
			reports = append(reports, rep)
		}
	}
	// Give the interval scrubber at least one firing.
	time.Sleep(5 * time.Millisecond)
	stop()
	stop() // idempotent
	for _, rep := range reports {
		if !rep.Clean() {
			t.Fatalf("clean store scrub under load reported %+v", rep)
		}
	}
	latest, ok := s.Latest()
	if !ok || latest.Seq != 40 {
		t.Fatalf("latest = %+v ok=%v, want seq 40", latest, ok)
	}
	if _, err := s.ReadGeneration(latest.Seq); err != nil {
		t.Fatalf("latest unreadable after scrubber run: %v", err)
	}
}

// TestScrubberCatchesRot proves the interval scrubber (not just manual
// passes) detects at-rest corruption.
func TestScrubberCatchesRot(t *testing.T) {
	dir := t.TempDir()
	s, ffs := scrubStore(t, dir, 3, Options{Keep: -1})
	stop := s.StartScrubber(200*time.Microsecond, ScrubOptions{})
	defer stop()
	if err := ffs.CorruptAtRest(filepath.Join(dir, genName(2)), Fault{Kind: BitFlip, FlipByte: 17}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := s.ReadGeneration(2); errors.Is(err, ErrNoGeneration) {
			return // quarantined by the background pass
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("interval scrubber never quarantined the rotted generation")
}

func TestCorruptAtRestRejectsBadKinds(t *testing.T) {
	dir := t.TempDir()
	_, ffs := scrubStore(t, dir, 1, Options{})
	name := filepath.Join(dir, genName(1))
	if err := ffs.CorruptAtRest(name, Fault{Kind: Crash}); err == nil {
		t.Fatal("CorruptAtRest accepted Crash kind")
	}
	if err := ffs.CorruptAtRest(name, Fault{Kind: Truncate, TornBytes: 1 << 30}); err == nil {
		t.Fatal("CorruptAtRest accepted no-op truncation")
	}
	// The file is untouched after rejected corruptions.
	if got, err := os.ReadFile(name); err != nil || !bytes.Equal(got, payload(1, 2048)) {
		t.Fatalf("rejected corruption mutated the file: %v", err)
	}
}
