package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// crashMatrixStats is exported into the test log so EXPERIMENTS.md can
// record the ops-injected / recoveries-verified matrix.
type crashMatrixStats struct {
	Ops           int // write boundaries in one commit
	Crashes       int // injected crash points (crash + torn variants)
	RecoveredOld  int // reopen restored the prior generation
	RecoveredNew  int // reopen restored the interrupted generation
	ManifestScans int // recoveries that needed a manifest rebuild
}

// copyDir clones a store directory so each crash point starts from the
// same committed baseline.
func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// TestCrashMatrix is the kill-at-every-write-boundary harness: a store
// with one committed generation attempts a second commit, and a
// simulated crash is injected at every counted filesystem operation —
// plus a torn-write variant at every byte-cutting opportunity. After
// each crash the directory is reopened with the real filesystem and
// must yield a bit-exact generation: the interrupted one if its commit
// point (the manifest rename) was passed, the prior one otherwise.
func TestCrashMatrix(t *testing.T) {
	old := payload(1, 3000)
	new_ := payload(2, 3500)

	// Baseline: a store with generation 1 committed.
	baseline := t.TempDir()
	s0 := openTest(t, baseline, Options{})
	if _, err := s0.Commit(10, old); err != nil {
		t.Fatal(err)
	}

	// Dry run to count the write boundaries of one commit.
	probeDir := copyDir(t, baseline)
	probe := NewFaultFS(OsFS{})
	sp := openTest(t, probeDir, Options{FS: probe})
	preOps := probe.Ops()
	if _, err := sp.Commit(20, new_); err != nil {
		t.Fatal(err)
	}
	commitOps := probe.Ops() - preOps
	if commitOps < 10 {
		t.Fatalf("suspiciously few ops per commit: %d (journal %v)", commitOps, probe.Journal())
	}

	stats := crashMatrixStats{Ops: commitOps}
	for k := 1; k <= commitOps; k++ {
		for _, tear := range []bool{false, true} {
			fault := Fault{Kind: Crash}
			name := "crash"
			if tear {
				fault = Fault{Kind: TornWrite, TornBytes: 97}
				name = "torn"
			}
			dir := copyDir(t, baseline)
			ffs := NewFaultFS(OsFS{})
			s, err := Open(dir, Options{FS: ffs, Sleep: noSleep})
			if err != nil {
				t.Fatalf("open at k=%d: %v", k, err)
			}
			ffs.FailAt(ffs.Ops()+k, fault)
			_, commitErr := s.Commit(20, new_)
			if !ffs.Crashed() {
				// The fault landed past the ops this commit performs
				// (can happen when retries shift op counts); nothing to
				// verify for this point.
				if commitErr != nil {
					t.Fatalf("k=%d %s: no crash but commit failed: %v", k, name, commitErr)
				}
				continue
			}
			stats.Crashes++

			// "Reboot": reopen the same directory with the real FS.
			s2, err := Open(dir, Options{Sleep: noSleep})
			if err != nil {
				t.Fatalf("k=%d %s: reopen after crash: %v\njournal: %v", k, name, err, ffs.Journal())
			}
			if s2.Rebuilt() {
				stats.ManifestScans++
			}
			latest, ok := s2.Latest()
			if !ok {
				t.Fatalf("k=%d %s: store lost all generations\njournal: %v", k, name, ffs.Journal())
			}
			got, err := s2.ReadGeneration(latest.Seq)
			if err != nil {
				t.Fatalf("k=%d %s: latest generation %d unreadable: %v\njournal: %v",
					k, name, latest.Seq, err, ffs.Journal())
			}
			switch {
			case bytes.Equal(got, old):
				stats.RecoveredOld++
				if latest.Step != 10 {
					t.Fatalf("k=%d %s: old payload but step %d", k, name, latest.Step)
				}
			case bytes.Equal(got, new_):
				stats.RecoveredNew++
				if latest.Step != 20 && !s2.Rebuilt() {
					t.Fatalf("k=%d %s: new payload but step %d", k, name, latest.Step)
				}
			default:
				t.Fatalf("k=%d %s: recovered payload matches neither generation (%d bytes)\njournal: %v",
					k, name, len(got), ffs.Journal())
			}
			// The prior generation must always still be available as a
			// fallback unless it was pruned by retention (Keep=3 here,
			// so never in this test).
			if _, err := s2.ReadGeneration(1); err != nil {
				t.Fatalf("k=%d %s: prior generation lost: %v", k, name, err)
			}
		}
	}
	if stats.Crashes == 0 {
		t.Fatal("harness injected no crashes")
	}
	if stats.RecoveredOld+stats.RecoveredNew != stats.Crashes {
		t.Fatalf("accounting mismatch: %+v", stats)
	}
	t.Logf("crash matrix: %d ops per commit, %d crash points injected, %d recovered prior gen, %d recovered new gen, %d manifest rebuilds",
		stats.Ops, stats.Crashes, stats.RecoveredOld, stats.RecoveredNew, stats.ManifestScans)
}

// TestCrashDuringOpenRecovery: a crash while Open itself is persisting a
// rebuilt manifest must not make things worse — a second Open succeeds.
func TestCrashDuringOpenRecovery(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{})
	want := payload(1, 777)
	if _, err := s.Commit(5, want); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, manifestName)); err != nil {
		t.Fatal(err)
	}
	// Crash at every op of the recovery rewrite.
	for k := 1; k <= 12; k++ {
		d := copyDir(t, dir)
		ffs := NewFaultFS(OsFS{})
		ffs.FailAt(k, Fault{Kind: Crash})
		// Open may or may not report an error depending on where the
		// crash lands (manifest persistence is best-effort); either way
		// a clean reopen must recover.
		_, _ = Open(d, Options{FS: ffs, Sleep: noSleep})
		s2, err := Open(d, Options{Sleep: noSleep})
		if err != nil {
			t.Fatalf("k=%d: clean reopen: %v", k, err)
		}
		got, err := s2.ReadGeneration(1)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("k=%d: recovery lost generation 1: %v", k, err)
		}
	}
}

// TestTornTailPartialReadRaw: a torn payload write leaves a file the
// store refuses to verify but still serves raw for frame-level salvage.
func TestTornTailPartialReadRaw(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OsFS{})
	s := openTest(t, dir, Options{FS: ffs})
	if _, err := s.Commit(1, payload(1, 500)); err != nil {
		t.Fatal(err)
	}
	// Tear the second generation's payload write after 100 bytes, then
	// force the file into place manually to emulate a filesystem that
	// lost the tail after the rename was already durable (size in the
	// manifest vs. truncated content).
	ffs.FailAt(ffs.Ops()+2, Fault{Kind: TornWrite, TornBytes: 100})
	if _, err := s.Commit(2, payload(2, 600)); !errors.Is(err, ErrCrashed) {
		t.Fatalf("expected crash, got %v", err)
	}
	// Reopen; latest must be generation 1, bit-exact.
	s2 := openTest(t, dir, Options{})
	latest, ok := s2.Latest()
	if !ok || latest.Seq != 1 {
		t.Fatalf("latest = %+v ok=%v, want seq 1", latest, ok)
	}
	got, err := s2.ReadGeneration(1)
	if err != nil || !bytes.Equal(got, payload(1, 500)) {
		t.Fatalf("generation 1 after torn tail: %v", err)
	}
}
