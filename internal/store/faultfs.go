package store

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"lossyckpt/internal/obs"
)

// Fault-injection errors.
var (
	// ErrCrashed is returned by every FaultFS operation at and after a
	// Crash or TornWrite fault point — the moral equivalent of the
	// process dying: nothing else reaches the disk.
	ErrCrashed = errors.New("store: simulated crash")
	// ErrInjected is the base of transient injected errors (ErrorOnce).
	ErrInjected = errors.New("store: injected transient error")
)

// FaultKind selects what goes wrong at an operation boundary.
type FaultKind int

const (
	// ErrorOnce fails the operation once with a transient error and
	// leaves the filesystem untouched; a retry of the same call succeeds.
	ErrorOnce FaultKind = iota
	// Crash fails the operation before it takes effect and kills the FS:
	// every subsequent operation returns ErrCrashed.
	Crash
	// TornWrite applies only part of a Write (TornBytes bytes) to the
	// underlying file and then crashes — the classic torn page.
	TornWrite
	// BitFlip silently flips one bit (bit FlipBit of byte FlipByte) in
	// the data of a Write and lets the operation succeed — at-rest
	// corruption that only CRCs can catch.
	BitFlip
	// Truncate cuts a file down to its first TornBytes bytes. It is only
	// meaningful through CorruptAtRest (post-commit media decay); as an
	// op-boundary fault it is ignored.
	Truncate
	// Latency delays the operation by Delay and then lets it succeed —
	// a slow disk or replica, not a broken one. Combine with SetOpDelay
	// for a blanket-slow replica instead of one slow operation.
	Latency
)

// String names the fault kind (used as the kind label on the injected
// fault counter).
func (k FaultKind) String() string {
	switch k {
	case ErrorOnce:
		return "error_once"
	case Crash:
		return "crash"
	case TornWrite:
		return "torn_write"
	case BitFlip:
		return "bit_flip"
	case Truncate:
		return "truncate"
	case Latency:
		return "latency"
	}
	return fmt.Sprintf("kind_%d", int(k))
}

// MetricInjectedFaults counts faults a FaultFS actually fired, labeled by
// kind=<error_once|crash|torn_write|bit_flip>.
const MetricInjectedFaults = "lossyckpt_faultfs_injected_faults_total"

// Fault describes one injected failure.
type Fault struct {
	Kind FaultKind
	// TornBytes is how many leading bytes of the Write survive
	// (TornWrite only).
	TornBytes int
	// FlipByte/FlipBit locate the corrupted bit (BitFlip only). FlipByte
	// is clamped to the written buffer.
	FlipByte int
	FlipBit  uint
	// Delay is how long a Latency fault stalls the operation.
	Delay time.Duration
}

// transientErr marks injected errors as retryable.
type transientErr struct{ error }

func (transientErr) Transient() bool { return true }

// IsTransient reports whether err advertises itself as retryable via a
// Transient() bool method anywhere in its chain.
func IsTransient(err error) bool {
	for err != nil {
		if t, ok := err.(interface{ Transient() bool }); ok && t.Transient() {
			return true
		}
		err = errors.Unwrap(err)
	}
	return false
}

// FaultFS wraps an FS and injects faults at numbered operation
// boundaries. Every FS call and every File Write/Sync/Close counts as
// one operation (reads are free: crash consistency is about writes).
// Concurrency-safe; one fault plan per instance.
type FaultFS struct {
	inner FS

	mu      sync.Mutex
	op      int
	faults  map[int]Fault
	crashed bool
	journal []string
	obsr    *obs.Registry
	// opDelay stalls every counted operation — a blanket-slow replica.
	opDelay time.Duration
	// sleep is the latency clock, injectable so slow-replica tests can
	// record delays instead of waiting them out; nil means time.Sleep.
	sleep func(time.Duration)
}

// SetObserver routes injected-fault counts and events to r (nil falls
// back to the process default registry at fire time).
func (f *FaultFS) SetObserver(r *obs.Registry) {
	f.mu.Lock()
	f.obsr = r
	f.mu.Unlock()
}

// observerLocked resolves the observer; callers hold f.mu.
func (f *FaultFS) observerLocked() *obs.Registry {
	if f.obsr != nil {
		return f.obsr
	}
	return obs.Default()
}

// NewFaultFS wraps inner with an empty fault plan.
func NewFaultFS(inner FS) *FaultFS {
	return &FaultFS{inner: inner, faults: make(map[int]Fault)}
}

// FailAt schedules fault f at the op-th counted operation (1-based).
func (f *FaultFS) FailAt(op int, fault Fault) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.faults[op] = fault
}

// SetOpDelay stalls every subsequent counted operation by d — the
// blanket slow replica. Zero turns it off.
func (f *FaultFS) SetOpDelay(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.opDelay = d
}

// SetSleep injects the latency clock (nil restores time.Sleep), so
// tests can observe slow-replica stalls without real wall time.
func (f *FaultFS) SetSleep(fn func(time.Duration)) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.sleep = fn
}

// CrashNow kills the FS immediately, independent of the op schedule:
// every subsequent operation returns ErrCrashed. The model for a
// replica dying between operations (process kill, node loss).
func (f *FaultFS) CrashNow() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return
	}
	f.crashed = true
	f.journal = append(f.journal, fmt.Sprintf("op %d+: crash now", f.op))
	if o := f.observerLocked(); o != nil {
		o.Counter(MetricInjectedFaults, "kind", Crash.String()).Inc()
		o.Event("faultfs.injected", "kind", Crash.String(), "op", f.op, "desc", "crash now")
	}
}

// Ops returns the number of operations counted so far.
func (f *FaultFS) Ops() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.op
}

// Crashed reports whether a Crash/TornWrite fault has fired.
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// Journal returns the op log ("op 3: create foo.tmp") for diagnostics.
func (f *FaultFS) Journal() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.journal...)
}

// step counts one operation and returns the fault scheduled for it, if
// any. It returns ErrCrashed once the FS is dead. Latency (per-fault or
// blanket SetOpDelay) is served outside the lock so a slow replica
// stalls only itself, never readers of the plan.
func (f *FaultFS) step(desc string) (Fault, bool, error) {
	fault, ok, delay, sleep, err := f.stepLocked(desc)
	if err == nil && delay > 0 {
		sleep(delay)
	}
	return fault, ok, err
}

func (f *FaultFS) stepLocked(desc string) (Fault, bool, time.Duration, func(time.Duration), error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	sleep := f.sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	if f.crashed {
		return Fault{}, false, 0, sleep, ErrCrashed
	}
	f.op++
	f.journal = append(f.journal, fmt.Sprintf("op %d: %s", f.op, desc))
	delay := f.opDelay
	fault, ok := f.faults[f.op]
	if !ok {
		return Fault{}, false, delay, sleep, nil
	}
	if o := f.observerLocked(); o != nil {
		o.Counter(MetricInjectedFaults, "kind", fault.Kind.String()).Inc()
		o.Event("faultfs.injected", "kind", fault.Kind.String(), "op", f.op, "desc", desc)
	}
	switch fault.Kind {
	case ErrorOnce:
		// Consume the fault so the retry succeeds.
		delete(f.faults, f.op)
		return fault, true, 0, sleep, transientErr{fmt.Errorf("%w at op %d (%s)", ErrInjected, f.op, desc)}
	case Crash:
		f.crashed = true
		return fault, true, 0, sleep, fmt.Errorf("%w at op %d (%s)", ErrCrashed, f.op, desc)
	case TornWrite, BitFlip:
		return fault, true, delay, sleep, nil
	case Latency:
		return fault, true, delay + fault.Delay, sleep, nil
	}
	return Fault{}, false, delay, sleep, nil
}

// crash marks the FS dead (used by TornWrite after the partial write).
func (f *FaultFS) crash() {
	f.mu.Lock()
	f.crashed = true
	f.mu.Unlock()
}

// Create implements FS.
func (f *FaultFS) Create(name string) (File, error) {
	if _, _, err := f.step("create " + name); err != nil {
		return nil, err
	}
	file, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, name: name, inner: file}, nil
}

// Open implements FS. Opens for reading are not counted, but a dead FS
// stays dead.
func (f *FaultFS) Open(name string) (File, error) {
	f.mu.Lock()
	dead := f.crashed
	f.mu.Unlock()
	if dead {
		return nil, ErrCrashed
	}
	file, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, name: name, inner: file, readOnly: true}, nil
}

// Rename implements FS.
func (f *FaultFS) Rename(oldname, newname string) error {
	if _, _, err := f.step("rename " + oldname + " -> " + newname); err != nil {
		return err
	}
	return f.inner.Rename(oldname, newname)
}

// Remove implements FS.
func (f *FaultFS) Remove(name string) error {
	if _, _, err := f.step("remove " + name); err != nil {
		return err
	}
	return f.inner.Remove(name)
}

// ReadDir implements FS (uncounted read).
func (f *FaultFS) ReadDir(dir string) ([]string, error) {
	f.mu.Lock()
	dead := f.crashed
	f.mu.Unlock()
	if dead {
		return nil, ErrCrashed
	}
	return f.inner.ReadDir(dir)
}

// MkdirAll implements FS.
func (f *FaultFS) MkdirAll(dir string) error {
	if _, _, err := f.step("mkdir " + dir); err != nil {
		return err
	}
	return f.inner.MkdirAll(dir)
}

// SyncDir implements FS.
func (f *FaultFS) SyncDir(dir string) error {
	if _, _, err := f.step("syncdir " + dir); err != nil {
		return err
	}
	return f.inner.SyncDir(dir)
}

// faultFile routes Write/Sync/Close through the fault plan.
type faultFile struct {
	fs       *FaultFS
	name     string
	inner    File
	readOnly bool
}

func (ff *faultFile) Read(p []byte) (int, error) { return ff.inner.Read(p) }

func (ff *faultFile) Write(p []byte) (int, error) {
	fault, ok, err := ff.fs.step(fmt.Sprintf("write %d bytes to %s", len(p), ff.name))
	if err != nil {
		return 0, err
	}
	if ok {
		switch fault.Kind {
		case TornWrite:
			n := fault.TornBytes
			if n > len(p) {
				n = len(p)
			}
			if n > 0 {
				ff.inner.Write(p[:n])
				ff.inner.Sync()
			}
			ff.fs.crash()
			return n, fmt.Errorf("%w: torn write (%d of %d bytes) to %s", ErrCrashed, n, len(p), ff.name)
		case BitFlip:
			mut := append([]byte(nil), p...)
			if len(mut) > 0 {
				i := fault.FlipByte
				if i >= len(mut) {
					i = len(mut) - 1
				}
				mut[i] ^= 1 << (fault.FlipBit % 8)
			}
			n, err := ff.inner.Write(mut)
			if n > len(p) {
				n = len(p)
			}
			return n, err
		}
	}
	return ff.inner.Write(p)
}

func (ff *faultFile) Sync() error {
	if ff.readOnly {
		return ff.inner.Sync()
	}
	if _, _, err := ff.fs.step("sync " + ff.name); err != nil {
		return err
	}
	return ff.inner.Sync()
}

func (ff *faultFile) Close() error {
	if ff.readOnly {
		return ff.inner.Close()
	}
	if _, _, err := ff.fs.step("close " + ff.name); err != nil {
		// On a simulated crash the OS would reclaim the descriptor;
		// mirror that so crash sweeps don't leak descriptors. A
		// transient error must leave the file open for the retry.
		if ff.fs.Crashed() {
			ff.inner.Close()
		}
		return err
	}
	return ff.inner.Close()
}

// CorruptAtRest damages a file that is already durably on "disk",
// bypassing the op counter and fault plan: the model for silent media
// decay after a successful commit, which scrubbing exists to catch.
// BitFlip flips bit FlipBit of byte FlipByte (clamped); Truncate keeps
// only the first TornBytes bytes. Other kinds are rejected.
func (f *FaultFS) CorruptAtRest(name string, fault Fault) error {
	f.mu.Lock()
	inner := f.inner
	o := f.observerLocked()
	f.mu.Unlock()

	src, err := inner.Open(name)
	if err != nil {
		return err
	}
	data, err := io.ReadAll(src)
	src.Close()
	if err != nil {
		return err
	}

	switch fault.Kind {
	case BitFlip:
		if len(data) == 0 {
			return fmt.Errorf("store: CorruptAtRest(%s): empty file", name)
		}
		i := fault.FlipByte
		if i >= len(data) {
			i = len(data) - 1
		}
		if i < 0 {
			i = 0
		}
		data[i] ^= 1 << (fault.FlipBit % 8)
	case Truncate:
		n := fault.TornBytes
		if n < 0 {
			n = 0
		}
		if n >= len(data) {
			return fmt.Errorf("store: CorruptAtRest(%s): truncate to %d leaves %d-byte file intact", name, n, len(data))
		}
		data = data[:n]
	default:
		return fmt.Errorf("store: CorruptAtRest(%s): kind %s not applicable at rest", name, fault.Kind)
	}

	dst, err := inner.Create(name)
	if err != nil {
		return err
	}
	if _, err := dst.Write(data); err != nil {
		dst.Close()
		return err
	}
	if err := dst.Sync(); err != nil {
		dst.Close()
		return err
	}
	if err := dst.Close(); err != nil {
		return err
	}
	if o != nil {
		o.Counter(MetricInjectedFaults, "kind", fault.Kind.String()).Inc()
		o.Event("faultfs.corrupt_at_rest", "kind", fault.Kind.String(), "name", name)
	}
	return nil
}
