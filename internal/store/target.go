package store

import (
	"context"
	"io"
	"time"
)

// Target is the checkpoint-store surface consumers (ckpt, faultsim, the
// CLI) program against: commit, read-back, audit. Both *Store (one
// root) and *ReplicatedStore (N roots with quorum semantics) implement
// it, so a checkpoint pipeline is replication-agnostic — pointing it at
// a replicated target changes durability, not code.
type Target interface {
	// Dir returns the target's root path (the common root for a
	// replicated target).
	Dir() string
	// Rebuilt reports whether opening had to reconstruct any manifest
	// from a directory scan.
	Rebuilt() bool
	// Generations returns the retained generations, oldest first (the
	// newest quorum-agreed view for a replicated target).
	Generations() []Generation
	// Latest returns the newest generation, if any.
	Latest() (Generation, bool)
	// NextSeq returns the next sequence number a commit would use.
	NextSeq() uint64
	// Commit adds payload as the next generation.
	Commit(step int, payload []byte) (Generation, error)
	// CommitCtx is Commit bound to a request context: cancellation
	// aborts between retry attempts and backoff sleeps.
	CommitCtx(ctx context.Context, step int, payload []byte) (Generation, error)
	// CommitFunc buffers write's output and commits it as one generation.
	CommitFunc(step int, write func(io.Writer) error) (Generation, error)
	// CommitFuncCtx is CommitFunc bound to a request context.
	CommitFuncCtx(ctx context.Context, step int, write func(io.Writer) error) (Generation, error)
	// CommitStream commits the bytes write produces without buffering
	// them.
	CommitStream(step int, write func(io.Writer) error) (Generation, error)
	// CommitStreamCtx is CommitStream bound to a request context.
	CommitStreamCtx(ctx context.Context, step int, write func(io.Writer) error) (Generation, error)
	// ReadGeneration returns generation seq's payload, verified.
	ReadGeneration(seq uint64) ([]byte, error)
	// ReadGenerationRaw returns generation seq's bytes plus whether they
	// verify against the (quorum-agreed) record.
	ReadGenerationRaw(seq uint64) (data []byte, verified bool, err error)
	// PhysicalBytes returns the bytes the target actually occupies for
	// its indexed generations — recipe plus chunk bytes for dedup
	// generations, payload size otherwise, summed over replicas for a
	// replicated target. Quota enforcement meters this, not logical
	// bytes.
	PhysicalBytes() int64
	// Scrub audits every retained generation (and, replicated, heals
	// lagging replicas).
	Scrub(opts ScrubOptions) (*ScrubReport, error)
	// StartScrubber runs Scrub every interval until stop is called.
	StartScrubber(interval time.Duration, opts ScrubOptions) (stop func())
	// StartScrubberCtx is StartScrubber with context cancellation.
	StartScrubberCtx(ctx context.Context, interval time.Duration, opts ScrubOptions) (stop func())
}

var (
	_ Target = (*Store)(nil)
	_ Target = (*ReplicatedStore)(nil)
)
