package store

import (
	"context"
	"fmt"
	"io"
)

// stream.go adds the streaming half of the commit protocol. Commit and
// CommitFunc need the whole payload in memory before the store sees its
// first byte; CommitStream hands the producer an io.Writer that feeds the
// backend's PayloadWriter directly, so a pipeline like
// core.CompressChunkedTo overlaps compression with store I/O and the
// store-side memory bound drops to one commitChunk buffer. The durability
// protocol is unchanged per backend: a producer failure mid-stream aborts
// the payload and the previous latest generation stays indexed.

// CommitStream commits the bytes write produces as the next generation
// without buffering them. write's io.Writer batches into commitChunk-sized
// retried writes; the generation's size and CRC accumulate incrementally
// as bytes pass through, so the manifest record is identical to what
// Commit would have written for the same bytes. An error from write (or a
// failed store write underneath it) aborts the commit: the partial payload
// is removed and the previous latest generation stays indexed.
func (s *Store) CommitStream(step int, write func(io.Writer) error) (gen Generation, err error) {
	return s.CommitStreamCtx(context.Background(), step, write)
}

// CommitStreamCtx is CommitStream bound to a request context:
// cancellation aborts the commit between retry attempts and backoff
// sleeps, the partial payload is removed, and the previous latest
// generation stays indexed.
func (s *Store) CommitStreamCtx(ctx context.Context, step int, write func(io.Writer) error) (gen Generation, err error) {
	if step < 0 {
		return Generation{}, fmt.Errorf("store: negative step %d", step)
	}
	if err := ctx.Err(); err != nil {
		return Generation{}, fmt.Errorf("store: commit: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.opCtx = ctx
	defer func() { s.opCtx = nil }()
	if o := s.observer(); o != nil {
		sp := o.StartSpan(MetricCommitSpan, "step", fmt.Sprint(step), "bytes", "streamed")
		defer func() {
			sp.EndErr(err)
			if err == nil {
				o.Counter(MetricCommitBytes).Add(float64(gen.Size))
			}
		}()
	}
	return s.commitAtLocked(s.nextSeqLocked(), step, s.expireStamp(), write)
}

// CommitStreamAt is CommitStream with a caller-chosen sequence number —
// the streaming entry point for replicated commits, where a coordinator
// assigns one seq across N replicas. seq below the store's NextSeq means
// this replica has already seen newer state: ErrSeqConflict.
func (s *Store) CommitStreamAt(seq uint64, step int, write func(io.Writer) error) (Generation, error) {
	return s.commitStreamAt(context.Background(), seq, step, s.expireStamp(), write)
}

// commitStreamAt is the coordinator-facing commit core: the sequence
// number AND the expiry stamp arrive from the caller, so a replicated
// commit records byte-identical metadata on every replica (an expiry
// computed per replica would break quorum record voting).
func (s *Store) commitStreamAt(ctx context.Context, seq uint64, step int, expireAt int64, write func(io.Writer) error) (gen Generation, err error) {
	if step < 0 {
		return Generation{}, fmt.Errorf("store: negative step %d", step)
	}
	if seq == 0 {
		return Generation{}, fmt.Errorf("%w: sequence numbers are 1-based", ErrSeqConflict)
	}
	if err := ctx.Err(); err != nil {
		return Generation{}, fmt.Errorf("store: commit gen %d: %w", seq, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.opCtx = ctx
	defer func() { s.opCtx = nil }()
	if seq < s.nextSeqLocked() {
		return Generation{}, fmt.Errorf("%w: commit at %d but store is at %d", ErrSeqConflict, seq, s.nextSeqLocked())
	}
	if o := s.observer(); o != nil {
		sp := o.StartSpan(MetricCommitSpan, "step", fmt.Sprint(step), "bytes", "streamed")
		defer func() {
			sp.EndErr(err)
			if err == nil {
				o.Counter(MetricCommitBytes).Add(float64(gen.Size))
			}
		}()
	}
	return s.commitAtLocked(seq, step, expireAt, write)
}
