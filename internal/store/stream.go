package store

import (
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"path/filepath"
)

// stream.go adds the streaming half of the commit protocol. Commit and
// CommitFunc need the whole payload in memory before the store sees its
// first byte; CommitStream hands the producer an io.Writer that feeds the
// generation's temp file directly, so a pipeline like
// core.CompressChunkedTo overlaps compression with store I/O and the
// store-side memory bound drops to one commitChunk buffer. The durability
// protocol is unchanged: the temp file is synced, renamed into the
// generation slot, the directory fsynced, and only then does the manifest
// index the new generation — a producer failure mid-stream leaves a temp
// file the next Open sweeps.

// CommitStream commits the bytes write produces as the next generation
// without buffering them. write's io.Writer batches into commitChunk-sized
// retried writes; the generation's size and CRC accumulate incrementally
// as bytes pass through, so the manifest record is identical to what
// Commit would have written for the same bytes. An error from write (or a
// failed store write underneath it) aborts the commit: the temp file is
// removed and the previous latest generation stays indexed.
func (s *Store) CommitStream(step int, write func(io.Writer) error) (gen Generation, err error) {
	if step < 0 {
		return Generation{}, fmt.Errorf("store: negative step %d", step)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var streamed uint64
	if o := s.observer(); o != nil {
		sp := o.StartSpan(MetricCommitSpan, "step", fmt.Sprint(step), "bytes", "streamed")
		defer func() {
			sp.EndErr(err)
			if err == nil {
				o.Counter(MetricCommitBytes).Add(float64(streamed))
			}
		}()
	}
	seq := s.man.NextSeq
	if seq == 0 {
		seq = 1 // sequence numbers are 1-based so "no generation" is unambiguous
	}
	final := filepath.Join(s.dir, genName(seq))
	tmp := final + tmpSuffix

	cw, err := s.newCommitWriter(tmp)
	if err != nil {
		return Generation{}, err
	}
	if err := write(cw); err != nil {
		cw.abort()
		return Generation{}, fmt.Errorf("store: commit gen %d: stream: %w", seq, err)
	}
	if err := cw.finish(); err != nil {
		return Generation{}, err
	}
	streamed = cw.n
	return s.finishCommit(seq, step, cw.n, cw.crc.Sum32(), tmp, final)
}

// commitWriter streams a generation payload into its temp file: writes
// batch into one commitChunk buffer (the same write granularity and retry
// policy as writePayload), and size plus CRC-32 accumulate as bytes pass
// through. After the first failure every Write returns the same error and
// the temp file is already gone.
type commitWriter struct {
	s    *Store
	f    File
	path string
	buf  []byte
	n    uint64
	crc  hash.Hash32
	err  error
}

func (s *Store) newCommitWriter(path string) (*commitWriter, error) {
	var f File
	if err := s.retry("create", func() (err error) {
		f, err = s.fs.Create(path)
		return err
	}); err != nil {
		return nil, fmt.Errorf("store: create %s: %w", path, err)
	}
	return &commitWriter{
		s:    s,
		f:    f,
		path: path,
		buf:  make([]byte, 0, commitChunk),
		crc:  crc32.NewIEEE(),
	}, nil
}

// Write implements io.Writer.
func (w *commitWriter) Write(p []byte) (int, error) {
	if w.err != nil {
		return 0, w.err
	}
	w.crc.Write(p)
	w.n += uint64(len(p))
	for rest := p; len(rest) > 0; {
		take := commitChunk - len(w.buf)
		if take > len(rest) {
			take = len(rest)
		}
		w.buf = append(w.buf, rest[:take]...)
		rest = rest[take:]
		if len(w.buf) == commitChunk {
			if err := w.flush(); err != nil {
				return 0, err
			}
		}
	}
	return len(p), nil
}

// flush writes the buffered chunk through the store's retry policy.
func (w *commitWriter) flush() error {
	if len(w.buf) == 0 {
		return nil
	}
	chunk := w.buf
	if err := w.s.retry("write", func() error {
		_, werr := w.f.Write(chunk)
		return werr
	}); err != nil {
		w.fail()
		w.err = fmt.Errorf("store: write %s: %w", w.path, err)
		return w.err
	}
	w.buf = w.buf[:0]
	return nil
}

// finish flushes the tail, fsyncs and closes the temp file — the same
// sync-before-close protocol writePayload follows.
func (w *commitWriter) finish() error {
	if w.err != nil {
		return w.err
	}
	if err := w.flush(); err != nil {
		return err
	}
	if err := w.s.retry("sync", func() error { return w.f.Sync() }); err != nil {
		w.fail()
		w.err = fmt.Errorf("store: sync %s: %w", w.path, err)
		return w.err
	}
	if err := w.s.retry("close", func() error { return w.f.Close() }); err != nil {
		w.s.fs.Remove(w.path)
		w.err = fmt.Errorf("store: close %s: %w", w.path, err)
		return w.err
	}
	w.err = fmt.Errorf("store: commit writer for %s already finished", w.path)
	return nil
}

// abort discards the temp file after a producer error.
func (w *commitWriter) abort() {
	if w.err != nil {
		return // already failed and cleaned up
	}
	w.fail()
	w.err = fmt.Errorf("store: commit writer for %s aborted", w.path)
}

func (w *commitWriter) fail() {
	w.f.Close()
	w.s.fs.Remove(w.path)
}
