// replicated.go layers N-way replication over the single-root Store.
// A ReplicatedStore owns N replicas (each a complete Store on its own
// backend root) and a write quorum W:
//
//   - Commit/CommitStream fan one payload out to every live replica
//     under one coordinator-chosen sequence number and succeed once W
//     replicas report byte-identical generation records; the call
//     returns at quorum, so one slow replica does not gate the commit
//     (its straggling write finishes in the background).
//   - Reads serve the newest quorum-agreed generation: a record counts
//     as agreed when at least R = N−W+1 replicas index the identical
//     record, the standard overlap guarantee that any read quorum
//     intersects every write quorum. Payload reads fall back across the
//     record's holders until a copy verifies.
//   - Read-repair re-materializes the winning copy onto replicas that
//     are missing it, hold a divergent record, or fail verification —
//     inline during reads, and wholesale during Scrub, which also
//     drops retention stragglers and quarantines sub-quorum orphans so
//     replicas converge byte-identical.
//
// A failed quorum write leaves partial state on the replicas that did
// accept it; that state is sub-quorum, so reads never serve it, and the
// next scrub parks it in quarantine.
package store

import (
	"context"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"

	"lossyckpt/internal/obs"
	"lossyckpt/internal/obs/journal"
)

// ErrQuorum indicates an operation that could not assemble its quorum.
var ErrQuorum = errors.New("store: quorum not reached")

// replica is one member of a ReplicatedStore: an open Store, or the
// error that kept it from opening.
type replica struct {
	dir string
	st  *Store
	err error
	// tail is the completion signal of the replica's most recently
	// enqueued commit (guarded by cmu). Commits chain on it so that
	// stragglers from at-quorum early returns still apply in coordinator
	// order — otherwise commit k+1 could reach a replica before its
	// commit k did, and k would die there with ErrSeqConflict.
	tail chan struct{}
}

// ReplicatedStore replicates a checkpoint store across N backend roots
// with W-of-N quorum commits and read-repair. It implements Target, so
// checkpoint pipelines use it exactly like a Store.
type ReplicatedStore struct {
	root     string
	w        int
	replicas []replica
	opts     Options

	// cmu serializes replicated operations (commit, read+repair, scrub)
	// so the coordinator observes each replica set consistently. The
	// replicas' own locks still serialize straggler writes that outlive
	// an at-quorum early return.
	cmu     sync.Mutex
	lastSeq uint64
	// wg tracks straggler goroutines from at-quorum early returns; Wait
	// drains them.
	wg sync.WaitGroup
}

// ReplicaDirs returns the conventional replica roots under root for an
// N-way store: root/r0 … root/r{n-1}. n < 2 returns just root, keeping
// the single-replica layout byte-identical to an unreplicated store.
func ReplicaDirs(root string, n int) []string {
	if n < 2 {
		return []string{root}
	}
	dirs := make([]string, n)
	for i := range dirs {
		dirs[i] = filepath.Join(root, fmt.Sprintf("r%d", i))
	}
	return dirs
}

// OpenReplicated opens an N-way replicated store over dirs with write
// quorum w (0 means majority). opts configures every replica;
// replicaFS, when non-empty, must have one FS per dir and overrides
// opts.FS per replica — the hook for per-replica fault injection. A
// replica that fails to open is carried as dead (commits skip it,
// scrub reports it); only a store with zero openable replicas is an
// error.
func OpenReplicated(root string, dirs []string, w int, opts Options, replicaFS ...FS) (*ReplicatedStore, error) {
	n := len(dirs)
	if n == 0 {
		return nil, errors.New("store: replicated store needs at least one replica")
	}
	if len(replicaFS) != 0 && len(replicaFS) != n {
		return nil, fmt.Errorf("store: %d replica filesystems for %d replicas", len(replicaFS), n)
	}
	if w == 0 {
		w = n/2 + 1
	}
	if w < 1 || w > n {
		return nil, fmt.Errorf("store: write quorum %d out of range for %d replicas", w, n)
	}
	r := &ReplicatedStore{root: root, w: w, opts: opts.withDefaults()}
	live := 0
	for i, dir := range dirs {
		ropts := opts
		if len(replicaFS) == n && replicaFS[i] != nil {
			ropts.FS = replicaFS[i]
		}
		st, err := Open(dir, ropts)
		if err == nil {
			live++
		}
		r.replicas = append(r.replicas, replica{dir: dir, st: st, err: err})
		if err == nil {
			r.lastSeq = maxU64(r.lastSeq, st.NextSeq()-1)
		}
	}
	if live == 0 {
		return nil, fmt.Errorf("store: no replica of %s opened: %w", root, r.replicas[0].err)
	}
	return r, nil
}

// NewReplicated wraps already-open stores as one replicated store with
// write quorum w (0 means majority) — the composition path for tests
// and callers that manage replica lifecycles themselves.
func NewReplicated(root string, stores []*Store, w int, opts Options) (*ReplicatedStore, error) {
	n := len(stores)
	if n == 0 {
		return nil, errors.New("store: replicated store needs at least one replica")
	}
	if w == 0 {
		w = n/2 + 1
	}
	if w < 1 || w > n {
		return nil, fmt.Errorf("store: write quorum %d out of range for %d replicas", w, n)
	}
	r := &ReplicatedStore{root: root, w: w, opts: opts.withDefaults()}
	for _, st := range stores {
		r.replicas = append(r.replicas, replica{dir: st.Dir(), st: st})
		r.lastSeq = maxU64(r.lastSeq, st.NextSeq()-1)
	}
	return r, nil
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// Dir returns the replicated store's common root.
func (r *ReplicatedStore) Dir() string { return r.root }

// Quorum returns the write quorum W.
func (r *ReplicatedStore) Quorum() int { return r.w }

// Replicas returns how many replicas the store spans (live or dead).
func (r *ReplicatedStore) Replicas() int { return len(r.replicas) }

// Replica returns replica i's Store (nil if it failed to open) and its
// open error, the per-replica surface the fault harness inspects.
func (r *ReplicatedStore) Replica(i int) (*Store, error) {
	return r.replicas[i].st, r.replicas[i].err
}

// readQuorum is R = N−W+1: the holder count that guarantees overlap
// with every successful write quorum.
func (r *ReplicatedStore) readQuorum() int { return len(r.replicas) - r.w + 1 }

// liveIdx returns the indexes of replicas that opened.
func (r *ReplicatedStore) liveIdx() []int {
	var live []int
	for i := range r.replicas {
		if r.replicas[i].st != nil {
			live = append(live, i)
		}
	}
	return live
}

// Rebuilt reports whether any live replica rebuilt its manifest at open.
func (r *ReplicatedStore) Rebuilt() bool {
	for _, rc := range r.replicas {
		if rc.st != nil && rc.st.Rebuilt() {
			return true
		}
	}
	return false
}

// Wait drains straggler replica writes left behind by at-quorum early
// returns — call before tearing down the replica roots.
func (r *ReplicatedStore) Wait() { r.wg.Wait() }

// PhysicalBytes sums the physical occupancy of every live replica —
// each replica holds its own recipe objects and chunk population, so
// the replicated total is the straightforward sum.
func (r *ReplicatedStore) PhysicalBytes() int64 {
	var n int64
	for _, i := range r.liveIdx() {
		n += r.replicas[i].st.PhysicalBytes()
	}
	return n
}

// DedupStats aggregates the dedup accounting across live replicas:
// counts and bytes sum (each replica stores its own recipes and
// chunks); Enabled reflects the shared options.
func (r *ReplicatedStore) DedupStats() DedupStats {
	var out DedupStats
	out.Enabled = r.opts.Dedup
	for _, i := range r.liveIdx() {
		st := r.replicas[i].st.DedupStats()
		out.DedupGens += st.DedupGens
		out.LogicalBytes += st.LogicalBytes
		out.RecipeBytes += st.RecipeBytes
		out.Chunks += st.Chunks
		out.ChunkBytes += st.ChunkBytes
	}
	return out
}

func (r *ReplicatedStore) observer() *obs.Registry {
	if r.opts.Observer != nil {
		return r.opts.Observer
	}
	return obs.Default()
}

// journal resolves the replicated store's effective flight recorder.
func (r *ReplicatedStore) journal() *journal.Journal {
	if r.opts.Journal != nil {
		return r.opts.Journal
	}
	return journal.Default()
}

// NextSeq returns the sequence number the next replicated commit will
// use: ahead of every live replica and of every commit this coordinator
// has already quorum-acknowledged.
func (r *ReplicatedStore) NextSeq() uint64 {
	r.cmu.Lock()
	defer r.cmu.Unlock()
	return r.nextSeqLocked()
}

func (r *ReplicatedStore) nextSeqLocked() uint64 {
	seq := r.lastSeq + 1
	for _, i := range r.liveIdx() {
		seq = maxU64(seq, r.replicas[i].st.NextSeq())
	}
	return seq
}

type commitRes struct {
	idx int
	gen Generation
	err error
}

// enqueueLocked runs fn on replica idx's serial commit chain: fn starts
// only after every previously enqueued commit for that replica has
// finished. Callers hold cmu, so chain order is coordinator order.
func (r *ReplicatedStore) enqueueLocked(idx int, fn func()) {
	rc := &r.replicas[idx]
	prev := rc.tail
	done := make(chan struct{})
	rc.tail = done
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		defer close(done)
		if prev != nil {
			<-prev
		}
		fn()
	}()
}

// Commit fans payload out to every live replica under one sequence
// number and returns once W replicas hold byte-identical records.
func (r *ReplicatedStore) Commit(step int, payload []byte) (Generation, error) {
	return r.CommitCtx(context.Background(), step, payload)
}

// CommitCtx is Commit bound to a request context: the coordinator's
// context reaches every replica's retry ladder, so cancellation aborts
// the fan-out between attempts instead of sleeping out N backoff
// budgets.
func (r *ReplicatedStore) CommitCtx(ctx context.Context, step int, payload []byte) (Generation, error) {
	if step < 0 {
		return Generation{}, fmt.Errorf("store: negative step %d", step)
	}
	if err := ctx.Err(); err != nil {
		return Generation{}, fmt.Errorf("store: replicated commit: %w", err)
	}
	r.cmu.Lock()
	defer r.cmu.Unlock()
	live := r.liveIdx()
	if len(live) < r.w {
		return Generation{}, r.quorumFailure("commit", fmt.Errorf("%d live replicas < quorum %d", len(live), r.w))
	}
	// Seq and expiry are coordinator-assigned so every replica records
	// the identical generation and quorum voting stays byte-exact.
	seq := r.nextSeqLocked()
	exp := r.expireStamp()
	results := make(chan commitRes, len(live))
	for _, idx := range live {
		idx, st := idx, r.replicas[idx].st
		r.enqueueLocked(idx, func() {
			gen, err := st.commitStreamAt(ctx, seq, step, exp, func(w io.Writer) error {
				_, werr := w.Write(payload)
				return werr
			})
			results <- commitRes{idx: idx, gen: gen, err: err}
		})
	}
	return r.collectQuorumLocked("commit", seq, results, len(live))
}

// CommitFunc buffers write's output and replicates it as one generation.
func (r *ReplicatedStore) CommitFunc(step int, write func(io.Writer) error) (Generation, error) {
	return r.CommitFuncCtx(context.Background(), step, write)
}

// CommitFuncCtx is CommitFunc bound to a request context.
func (r *ReplicatedStore) CommitFuncCtx(ctx context.Context, step int, write func(io.Writer) error) (Generation, error) {
	var buf payloadBuffer
	if err := write(&buf); err != nil {
		return Generation{}, err
	}
	return r.CommitCtx(ctx, step, buf.b)
}

// now resolves the coordinator's wall clock.
func (r *ReplicatedStore) now() time.Time {
	if r.opts.Now != nil {
		return r.opts.Now()
	}
	return time.Now()
}

// expireStamp returns the expiry second for a generation committed now
// (0 when TTL retention is off).
func (r *ReplicatedStore) expireStamp() int64 {
	if r.opts.TTL <= 0 {
		return 0
	}
	return r.now().Add(r.opts.TTL).Unix()
}

// ttlSkewSeconds resolves the clock-skew tolerance for expiry checks.
func (r *ReplicatedStore) ttlSkewSeconds() int64 {
	switch {
	case r.opts.TTLSkew > 0:
		return int64(r.opts.TTLSkew / time.Second)
	case r.opts.TTLSkew < 0:
		return 0
	default:
		return 30
	}
}

// fanoutWriter tees a producer's stream into one pipe per replica. A
// replica whose commit dies closes its pipe reader with the error, so
// the next write to that branch fails and the branch is dropped — the
// producer keeps streaming to the survivors and never blocks on a dead
// replica. Only when every branch is dead does Write error out.
type fanoutWriter struct {
	pws  []*io.PipeWriter
	dead []bool
}

func (f *fanoutWriter) Write(p []byte) (int, error) {
	alive := 0
	for i, pw := range f.pws {
		if f.dead[i] {
			continue
		}
		if _, err := pw.Write(p); err != nil {
			f.dead[i] = true
			continue
		}
		alive++
	}
	if alive == 0 {
		return 0, errors.New("store: replicated stream: every replica failed")
	}
	return len(p), nil
}

// CommitStream streams write's output to every live replica at once
// (one synchronous pipe per replica — the stream paces at the slowest
// live branch) and succeeds once W replicas hold identical records.
func (r *ReplicatedStore) CommitStream(step int, write func(io.Writer) error) (Generation, error) {
	return r.CommitStreamCtx(context.Background(), step, write)
}

// CommitStreamCtx is CommitStream bound to a request context; the
// coordinator's context reaches every replica's commit and retry
// ladder.
func (r *ReplicatedStore) CommitStreamCtx(ctx context.Context, step int, write func(io.Writer) error) (Generation, error) {
	if step < 0 {
		return Generation{}, fmt.Errorf("store: negative step %d", step)
	}
	if err := ctx.Err(); err != nil {
		return Generation{}, fmt.Errorf("store: replicated commit: %w", err)
	}
	r.cmu.Lock()
	defer r.cmu.Unlock()
	live := r.liveIdx()
	if len(live) < r.w {
		return Generation{}, r.quorumFailure("commit", fmt.Errorf("%d live replicas < quorum %d", len(live), r.w))
	}
	seq := r.nextSeqLocked()
	exp := r.expireStamp()
	results := make(chan commitRes, len(live))
	pws := make([]*io.PipeWriter, len(live))
	for i, idx := range live {
		pr, pw := io.Pipe()
		pws[i] = pw
		idx, st := idx, r.replicas[idx].st
		r.enqueueLocked(idx, func() {
			gen, err := st.commitStreamAt(ctx, seq, step, exp, func(w io.Writer) error {
				_, cerr := io.Copy(w, pr)
				return cerr
			})
			// Release the producer: a failed branch propagates its error
			// to the next fanout write instead of blocking it.
			pr.CloseWithError(err)
			results <- commitRes{idx: idx, gen: gen, err: err}
		})
	}

	f := &fanoutWriter{pws: pws, dead: make([]bool, len(pws))}
	werr := write(f)
	for _, pw := range pws {
		if werr != nil {
			pw.CloseWithError(werr)
		} else {
			pw.Close()
		}
	}
	if werr != nil {
		for range live {
			<-results
		}
		return Generation{}, fmt.Errorf("store: replicated commit gen %d: stream: %w", seq, werr)
	}
	return r.collectQuorumLocked("commit", seq, results, len(live))
}

// collectQuorumLocked gathers per-replica commit results until W of
// them agree on one record (success, returned immediately — stragglers
// drain in the background) or too many have failed for W agreement to
// remain possible.
func (r *ReplicatedStore) collectQuorumLocked(op string, seq uint64, results <-chan commitRes, total int) (Generation, error) {
	o := r.observer()
	// The quorum wide event: every replica's vote lands on it, including
	// stragglers that finish after the at-quorum early return (their
	// votes still count in metrics; votes after End are dropped from the
	// journal record).
	jop := r.journal().Begin("store.quorum_commit", "op", op,
		"quorum", strconv.Itoa(r.w), "replicas", strconv.Itoa(total))
	jop.SetSeq(seq)
	counts := make(map[Generation]int)
	received, failed := 0, 0
	var firstErr error
	record := func(res commitRes) (Generation, bool) {
		received++
		if o != nil {
			o.Counter(MetricReplicaCommits,
				"replica", strconv.Itoa(res.idx),
				"ok", strconv.FormatBool(res.err == nil)).Inc()
		}
		jop.Vote(strconv.Itoa(res.idx), res.err == nil, res.err)
		if res.err != nil {
			failed++
			if firstErr == nil {
				firstErr = fmt.Errorf("replica %d: %w", res.idx, res.err)
			}
			if o != nil {
				o.Event("store.replica_commit_failed", "replica", res.idx, "seq", seq, "err", res.err.Error())
			}
			return Generation{}, false
		}
		counts[res.gen]++
		return res.gen, counts[res.gen] >= r.w
	}
	for received < total {
		gen, quorum := record(<-results)
		if quorum {
			if len(counts) > 1 && o != nil {
				o.Event("store.replica_commit_divergent", "seq", seq, "records", len(counts))
			}
			r.lastSeq = seq
			// Drain stragglers off-path so their metrics still land.
			if rest := total - received; rest > 0 {
				r.wg.Add(1)
				go func(rest int) {
					defer r.wg.Done()
					for i := 0; i < rest; i++ {
						record(<-results)
					}
				}(rest)
			}
			jop.SetBytes(0, int64(gen.Size))
			jop.End(nil)
			return gen, nil
		}
		if total-failed < r.w {
			break
		}
	}
	// Quorum unreachable; drain whatever is still in flight.
	if rest := total - received; rest > 0 {
		r.wg.Add(1)
		go func(rest int) {
			defer r.wg.Done()
			for i := 0; i < rest; i++ {
				record(<-results)
			}
		}(rest)
	}
	if firstErr == nil {
		firstErr = errors.New("replicas disagree on the committed record")
	}
	qerr := r.quorumFailure(op, fmt.Errorf("gen %d: %w", seq, firstErr))
	jop.End(qerr)
	return Generation{}, qerr
}

func (r *ReplicatedStore) quorumFailure(op string, cause error) error {
	if o := r.observer(); o != nil {
		o.Counter(MetricQuorumFailures, "op", op).Inc()
		o.Event("store.quorum_failure", "op", op, "err", cause.Error())
	}
	return fmt.Errorf("%w: %s: %v", ErrQuorum, op, cause)
}

// Generations returns the newest quorum-agreed view: records at least
// R = N−W+1 live replicas hold identically, oldest first. When nothing
// reaches R (a degraded store), it falls back to the union view — for
// each sequence number, the record the most replicas hold — so restore
// can still mine whatever survives.
func (r *ReplicatedStore) Generations() []Generation {
	r.cmu.Lock()
	defer r.cmu.Unlock()
	return r.generationsLocked()
}

func (r *ReplicatedStore) generationsLocked() []Generation {
	agreed, union := r.viewsLocked()
	view := agreed
	if len(view) == 0 {
		view = union
	}
	gens := make([]Generation, 0, len(view))
	for _, g := range view {
		gens = append(gens, g)
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i].Seq < gens[j].Seq })
	return gens
}

// viewsLocked computes both membership views in one pass: the
// quorum-agreed records (holder count ≥ R) and the best-effort union
// (per seq, the record with the most holders).
func (r *ReplicatedStore) viewsLocked() (agreed, union map[uint64]Generation) {
	counts := make(map[Generation]int)
	for _, i := range r.liveIdx() {
		for _, g := range r.replicas[i].st.Generations() {
			counts[g]++
		}
	}
	agreed = make(map[uint64]Generation)
	union = make(map[uint64]Generation)
	best := make(map[uint64]int)
	rq := r.readQuorum()
	for g, n := range counts {
		if n > best[g.Seq] || (n == best[g.Seq] && betterRecord(g, union[g.Seq])) {
			best[g.Seq] = n
			union[g.Seq] = g
		}
		if n >= rq {
			if cur, ok := agreed[g.Seq]; !ok || n > counts[cur] || (n == counts[cur] && betterRecord(g, cur)) {
				agreed[g.Seq] = g
			}
		}
	}
	return agreed, union
}

// betterRecord is the deterministic tie-break between two equally held
// records for one sequence number.
func betterRecord(a, b Generation) bool {
	if a.Size != b.Size {
		return a.Size > b.Size
	}
	return a.CRC > b.CRC
}

// Latest returns the newest quorum-agreed generation, if any.
func (r *ReplicatedStore) Latest() (Generation, bool) {
	gens := r.Generations()
	if len(gens) == 0 {
		return Generation{}, false
	}
	return gens[len(gens)-1], true
}

// ReadGeneration returns generation seq's payload from the first
// replica whose copy verifies, repairing the others; no verifiable copy
// anywhere is ErrCorrupt.
func (r *ReplicatedStore) ReadGeneration(seq uint64) ([]byte, error) {
	data, ok, err := r.ReadGenerationRaw(seq)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("%w: generation %d fails verification on every replica", ErrCorrupt, seq)
	}
	return data, nil
}

// ReadGenerationRaw reads generation seq with per-replica fallback and
// inline read-repair: candidate records are tried in holder-count order,
// each holder's payload verified against the record, and the first
// verified copy wins. Replicas missing the generation, holding a
// divergent record, or failing verification receive the winning copy
// before the read returns. With no verified copy anywhere the longest
// raw payload comes back with verified=false (frame-level salvage), and
// nothing is repaired.
func (r *ReplicatedStore) ReadGenerationRaw(seq uint64) (data []byte, verified bool, err error) {
	r.cmu.Lock()
	defer r.cmu.Unlock()
	o := r.observer()
	live := r.liveIdx()

	holders := make(map[Generation][]int)
	var missing []int
	for _, idx := range live {
		if g, ok := r.replicas[idx].st.Record(seq); ok {
			holders[g] = append(holders[g], idx)
		} else {
			missing = append(missing, idx)
		}
	}
	if len(holders) == 0 {
		return nil, false, fmt.Errorf("%w: generation %d on any replica", ErrNoGeneration, seq)
	}
	candidates := make([]Generation, 0, len(holders))
	for g := range holders {
		candidates = append(candidates, g)
	}
	sort.Slice(candidates, func(i, j int) bool {
		if len(holders[candidates[i]]) != len(holders[candidates[j]]) {
			return len(holders[candidates[i]]) > len(holders[candidates[j]])
		}
		return betterRecord(candidates[i], candidates[j])
	})

	bad := make(map[int]bool) // replicas whose copy failed to verify
	var winner *Generation
	var winData []byte
search:
	for _, cand := range candidates {
		for _, idx := range holders[cand] {
			d, ok, rerr := r.replicas[idx].st.ReadGenerationRaw(seq)
			if rerr == nil && ok {
				g := cand
				winner, winData = &g, d
				break search
			}
			bad[idx] = true
			if o != nil {
				reason := "corrupt"
				if rerr != nil {
					reason = rerr.Error()
				}
				o.Event("store.replica_read_failed", "replica", idx, "seq", seq, "reason", reason)
			}
		}
	}
	if winner == nil {
		// Salvage path: no verified copy anywhere. Return the longest raw
		// bytes so frame-level partial recovery can mine them.
		var best []byte
		for _, cand := range candidates {
			for _, idx := range holders[cand] {
				if d, _, rerr := r.replicas[idx].st.ReadGenerationRaw(seq); rerr == nil && len(d) > len(best) {
					best = d
				}
			}
		}
		if best == nil {
			return nil, false, fmt.Errorf("%w: generation %d unreadable on every replica", ErrCorrupt, seq)
		}
		return best, false, nil
	}

	// Read-repair: push the winning copy onto every live replica that
	// lacks it, holds a different record, or failed verification.
	winnerHolders := make(map[int]bool)
	for _, idx := range holders[*winner] {
		winnerHolders[idx] = true
	}
	for _, idx := range live {
		reason := ""
		switch {
		case bad[idx]:
			reason = "corrupt"
		case !winnerHolders[idx]:
			reason = "missing"
			if _, ok := r.replicas[idx].st.Record(seq); ok {
				reason = "divergent"
			}
		}
		if reason == "" {
			continue
		}
		if perr := r.replicas[idx].st.PutGeneration(*winner, winData); perr != nil {
			if o != nil {
				o.Event("store.read_repair_failed", "replica", idx, "seq", seq, "err", perr.Error())
			}
			r.journal().Note("store.read_repair_failed",
				"replica", strconv.Itoa(idx), "seq", strconv.FormatUint(seq, 10), "err", perr.Error())
			continue
		}
		if o != nil {
			o.Counter(MetricReadRepairs, "replica", strconv.Itoa(idx), "reason", reason).Inc()
			o.Event("store.read_repair", "replica", idx, "seq", seq, "reason", reason)
		}
		r.journal().Note("store.read_repair",
			"replica", strconv.Itoa(idx), "seq", strconv.FormatUint(seq, 10), "reason", reason)
	}
	return winData, true, nil
}

// Scrub audits every replica and then converges them: each live replica
// runs its local scrub (quarantining corrupt payloads), the
// quorum-agreed membership is recomputed, agreed generations are
// re-materialized onto replicas missing or diverging from them, and
// sub-quorum leftovers are dropped (older than the agreed ring —
// retention lag) or quarantined (newer or conflicting — e.g. the debris
// of a failed quorum write). When no generation is quorum-agreed the
// convergence phase is skipped entirely rather than destroy last
// surviving copies. The report aggregates per-replica results and the
// residual divergence, which also feeds the divergence gauge.
func (r *ReplicatedStore) Scrub(opts ScrubOptions) (rep *ScrubReport, err error) {
	r.cmu.Lock()
	defer r.cmu.Unlock()
	o := r.observer()
	jop := r.journal().Begin("store.scrub", "mode", "replicated")
	if jop != nil {
		defer func() {
			if rep != nil {
				repaired := 0
				for _, rs := range rep.Replicas {
					repaired += len(rs.Repaired)
				}
				jop.Set("checked", strconv.Itoa(rep.Checked),
					"quarantined", strconv.Itoa(len(rep.Quarantined)),
					"repaired", strconv.Itoa(repaired))
			}
			jop.End(err)
		}()
	}
	rep = &ScrubReport{Replicas: make([]ReplicaScrub, len(r.replicas))}

	for i := range r.replicas {
		rs := &rep.Replicas[i]
		rs.Replica = i
		rc := &r.replicas[i]
		if rc.st == nil {
			rs.Err = rc.err
			continue
		}
		lrep, lerr := rc.st.Scrub(opts)
		rs.Report, rs.Err = lrep, lerr
		if lrep != nil {
			rep.Checked += lrep.Checked
			rep.Quarantined = append(rep.Quarantined, lrep.Quarantined...)
			rep.Missing = append(rep.Missing, lrep.Missing...)
			rep.Expired = append(rep.Expired, lrep.Expired...)
			rep.ManifestRebuilt = rep.ManifestRebuilt || lrep.ManifestRebuilt
		}
	}

	agreed, _ := r.viewsLocked()
	if len(agreed) > 0 {
		oldest := ^uint64(0)
		for seq := range agreed {
			if seq < oldest {
				oldest = seq
			}
		}
		for _, idx := range r.liveIdx() {
			st := r.replicas[idx].st
			rs := &rep.Replicas[idx]
			local := make(map[uint64]Generation)
			for _, g := range st.Generations() {
				local[g.Seq] = g
			}
			// Heal: every agreed generation must exist here, byte-identical.
			// Expired generations are exempt — replica-local TTL pruning is
			// about to remove them everywhere, and re-materializing a copy
			// one replica already pruned would ping-pong against it.
			nowU, skew := r.now().Unix(), r.ttlSkewSeconds()
			for seq, want := range agreed {
				if want.Expired(nowU, skew) {
					continue
				}
				if have, ok := local[seq]; ok && have == want {
					continue
				}
				reason := "missing"
				if _, ok := local[seq]; ok {
					reason = "divergent"
				}
				data := r.readAgreedLocked(want)
				if data == nil {
					if o != nil {
						o.Event("store.scrub_repair_unreadable", "replica", idx, "seq", seq)
					}
					continue
				}
				if perr := st.PutGeneration(want, data); perr != nil {
					if o != nil {
						o.Event("store.scrub_repair_failed", "replica", idx, "seq", seq, "err", perr.Error())
					}
					continue
				}
				rs.Repaired = append(rs.Repaired, seq)
				if o != nil {
					o.Counter(MetricReadRepairs, "replica", strconv.Itoa(idx), "reason", reason).Inc()
					o.Event("store.scrub_repair", "replica", idx, "seq", seq, "reason", reason)
				}
				r.journal().Note("store.scrub_repair",
					"replica", strconv.Itoa(idx), "seq", strconv.FormatUint(seq, 10), "reason", reason)
			}
			// Converge: local generations outside the agreed set are
			// retention lag (older than a full agreed ring, meaning the
			// quorum deliberately pruned them — drop) or sub-quorum
			// debris (park in quarantine, never destroy). An agreed ring
			// below retention capacity proves nothing was pruned, so
			// older orphans are quarantined too, not destroyed.
			ringFull := r.opts.Keep > 0 && len(agreed) >= r.opts.Keep
			for seq := range local {
				if _, ok := agreed[seq]; ok {
					continue
				}
				if seq < oldest && ringFull {
					if derr := st.Drop(seq); derr == nil {
						rs.Dropped = append(rs.Dropped, seq)
					}
					continue
				}
				if qpath, qerr := st.Quarantine(seq); qerr == nil {
					rep.Quarantined = append(rep.Quarantined, Quarantined{Seq: seq, Reason: "divergent", Path: qpath})
					if o != nil {
						o.Counter(MetricScrubQuarantined, "reason", "divergent").Inc()
						o.Event("store.scrub_quarantined", "replica", idx, "seq", seq, "reason", "divergent")
					}
				}
			}
			sort.Slice(rs.Repaired, func(a, b int) bool { return rs.Repaired[a] < rs.Repaired[b] })
			sort.Slice(rs.Dropped, func(a, b int) bool { return rs.Dropped[a] < rs.Dropped[b] })
		}
	}

	rep.Divergent = r.divergenceLocked()
	if o != nil {
		o.Gauge(MetricReplicaDiverged).Set(float64(rep.Divergent))
	}
	return rep, nil
}

// readAgreedLocked returns a verified copy of an agreed generation from
// any live replica holding exactly that record.
func (r *ReplicatedStore) readAgreedLocked(want Generation) []byte {
	for _, idx := range r.liveIdx() {
		if g, ok := r.replicas[idx].st.Record(want.Seq); !ok || g != want {
			continue
		}
		if d, ok, err := r.replicas[idx].st.ReadGenerationRaw(want.Seq); err == nil && ok {
			return d
		}
	}
	return nil
}

// Divergence counts generations the live replicas still disagree on —
// missing on some live replica or recorded differently.
func (r *ReplicatedStore) Divergence() int {
	r.cmu.Lock()
	defer r.cmu.Unlock()
	return r.divergenceLocked()
}

func (r *ReplicatedStore) divergenceLocked() int {
	live := r.liveIdx()
	perSeq := make(map[uint64]map[Generation]int)
	for _, idx := range live {
		for _, g := range r.replicas[idx].st.Generations() {
			if perSeq[g.Seq] == nil {
				perSeq[g.Seq] = make(map[Generation]int)
			}
			perSeq[g.Seq][g]++
		}
	}
	divergent := 0
	for _, recs := range perSeq {
		uniform := len(recs) == 1
		for _, n := range recs {
			if n != len(live) {
				uniform = false
			}
		}
		if !uniform {
			divergent++
		}
	}
	return divergent
}

// StartScrubber runs the replicated Scrub every interval until the
// returned stop function is called.
func (r *ReplicatedStore) StartScrubber(interval time.Duration, opts ScrubOptions) (stop func()) {
	return r.StartScrubberCtx(context.Background(), interval, opts)
}

// StartScrubberCtx is StartScrubber with context cancellation; an
// in-flight pass drains before stop or cancellation returns control.
func (r *ReplicatedStore) StartScrubberCtx(ctx context.Context, interval time.Duration, opts ScrubOptions) (stop func()) {
	return startScrubLoop(ctx, interval, func() {
		if _, err := r.Scrub(opts); err != nil {
			if o := r.observer(); o != nil {
				o.Event("store.scrub_error", "dir", r.root, "err", err.Error())
			}
		}
	})
}
