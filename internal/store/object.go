package store

import (
	"fmt"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

const (
	objManifestPrefix = "manifest-"
	objManifestSuffix = ".mf"
	// objQuarantinePrefix keeps the namespace flat: quarantined payloads
	// are copied under this key prefix and the original key deleted (an
	// object store has no rename, so quarantine is copy-then-delete).
	objQuarantinePrefix = "quarantine."
)

// objectBackend is the object-store-style layout: every payload lives
// directly under its final flat key (no temp files, no rename — an
// interrupted PUT leaves an unindexed object the next Sweep collects),
// the manifest is a chain of immutable versioned objects, and the
// commit point is the CRC-protected pointer-record swap described in
// pointer.go. Locally the "object store" is a directory of flat keys;
// in a real deployment the FS implementation would wrap a remote API.
type objectBackend struct {
	dir string
	fs  FS
	rt  retrier
	// ver is the version of the live manifest object, maintained across
	// WriteManifest calls and recovered by Init/ReadManifest scans.
	ver uint64
}

func newObjectBackend(dir string, fs FS, rt retrier) *objectBackend {
	return &objectBackend{dir: dir, fs: fs, rt: rt}
}

func (b *objectBackend) Kind() BackendKind { return BackendObject }

func (b *objectBackend) key(name string) string { return filepath.Join(b.dir, name) }

func manifestKey(v uint64) string {
	return fmt.Sprintf("%s%08d%s", objManifestPrefix, v, objManifestSuffix)
}

// parseManifestKey inverts manifestKey.
func parseManifestKey(name string) (uint64, bool) {
	if !strings.HasPrefix(name, objManifestPrefix) || !strings.HasSuffix(name, objManifestSuffix) {
		return 0, false
	}
	mid := name[len(objManifestPrefix) : len(name)-len(objManifestSuffix)]
	v, err := strconv.ParseUint(mid, 10, 64)
	if err != nil || mid == "" {
		return 0, false
	}
	return v, true
}

func (b *objectBackend) Init() error {
	if err := b.rt("mkdir", func() error { return b.fs.MkdirAll(b.dir) }); err != nil {
		return err
	}
	// Recover the manifest version counter from the keys present, so a
	// reopened store never reuses a version number.
	if names, err := b.fs.ReadDir(b.dir); err == nil {
		for _, name := range names {
			if v, ok := parseManifestKey(name); ok && v > b.ver {
				b.ver = v
			}
		}
	}
	return nil
}

// objectWriter writes the payload straight to its final key; Commit is
// the durable PUT (flush + fsync + close). Visibility is governed by
// the manifest pointer alone: a torn or unreferenced object is garbage,
// not corruption.
type objectWriter struct{ cw *chunkedWriter }

func (b *objectBackend) BeginPayload(seq uint64) (PayloadWriter, error) {
	cw, err := newChunkedWriter(b.fs, b.rt, b.key(genName(seq)))
	if err != nil {
		return nil, err
	}
	return &objectWriter{cw: cw}, nil
}

func (w *objectWriter) Write(p []byte) (int, error) { return w.cw.Write(p) }
func (w *objectWriter) Commit() error               { return w.cw.seal() }
func (w *objectWriter) Abort()                      { w.cw.abort() }

func (b *objectBackend) ReadPayload(seq uint64) ([]byte, error) {
	return readFileFS(b.fs, b.key(genName(seq)))
}

func (b *objectBackend) RemovePayload(seq uint64) error {
	return b.fs.Remove(b.key(genName(seq)))
}

func (b *objectBackend) ListPayloads() ([]uint64, error) {
	names, err := b.fs.ReadDir(b.dir)
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, name := range names {
		if seq, ok := parseGenName(name); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// ReadManifest resolves the pointer record to the live manifest object.
// A missing, torn or stale pointer falls back to scanning the versioned
// manifest objects newest-first for the first image that decodes — so a
// crash anywhere in the pointer swap still recovers either the old or
// the new index, never a torn mix.
func (b *objectBackend) ReadManifest() ([]byte, error) {
	if praw, err := readFileFS(b.fs, b.key(pointerName)); err == nil {
		if v, perr := DecodePointer(praw); perr == nil {
			if mraw, rerr := readFileFS(b.fs, b.key(manifestKey(v))); rerr == nil {
				if _, _, derr := DecodeManifest(mraw); derr == nil {
					if v > b.ver {
						b.ver = v
					}
					return mraw, nil
				}
			}
		}
	}
	// Pointer unusable: scan manifest objects, newest version first.
	names, err := b.fs.ReadDir(b.dir)
	if err != nil {
		return nil, err
	}
	var vers []uint64
	for _, name := range names {
		if v, ok := parseManifestKey(name); ok {
			vers = append(vers, v)
		}
	}
	sort.Slice(vers, func(i, j int) bool { return vers[i] > vers[j] })
	for _, v := range vers {
		mraw, rerr := readFileFS(b.fs, b.key(manifestKey(v)))
		if rerr != nil {
			continue
		}
		if _, _, derr := DecodeManifest(mraw); derr != nil {
			continue
		}
		if v > b.ver {
			b.ver = v
		}
		return mraw, nil
	}
	return nil, fmt.Errorf("store: %s: no readable manifest object", b.dir)
}

// WriteManifest is the object backend's commit protocol: write the new
// immutable manifest object, then swap the pointer record to name it.
// A crash before the pointer write leaves the old pointer (old state);
// a torn pointer write fails the pointer CRC and recovery adopts the
// newest decodable manifest object (new state). Either way the store
// reopens to a consistent index. The previous manifest object is kept
// as a recovery fallback; older ones are garbage-collected.
func (b *objectBackend) WriteManifest(data []byte) error {
	v := b.ver + 1
	mw, err := newChunkedWriter(b.fs, b.rt, b.key(manifestKey(v)))
	if err != nil {
		return err
	}
	if _, err := mw.Write(data); err != nil {
		return err
	}
	if err := mw.seal(); err != nil {
		return err
	}
	pw, err := newChunkedWriter(b.fs, b.rt, b.key(pointerName))
	if err != nil {
		return err
	}
	if _, err := pw.Write(EncodePointer(v)); err != nil {
		return err
	}
	if err := pw.seal(); err != nil {
		return err
	}
	prev := b.ver
	b.ver = v
	// Garbage-collect manifest objects older than the kept fallback,
	// best effort: a leftover is litter, not corruption.
	if names, err := b.fs.ReadDir(b.dir); err == nil {
		for _, name := range names {
			if ov, ok := parseManifestKey(name); ok && ov < prev {
				b.fs.Remove(b.key(name))
			}
		}
	}
	return nil
}

// Sweep removes payload objects the manifest does not index (torn or
// never-committed PUTs) and manifest objects that are neither the live
// version nor its kept predecessor — including versions newer than the
// pointer, which are uncommitted images from a crash between the
// manifest-object write and the pointer swap.
func (b *objectBackend) Sweep(indexed map[uint64]bool) int {
	names, err := b.fs.ReadDir(b.dir)
	if err != nil {
		return 0
	}
	swept := 0
	for _, name := range names {
		if seq, ok := parseGenName(name); ok && !indexed[seq] {
			b.fs.Remove(b.key(name))
			swept++
			continue
		}
		if v, ok := parseManifestKey(name); ok && (v+1 < b.ver || v > b.ver) {
			b.fs.Remove(b.key(name))
			swept++
		}
	}
	return swept
}

// objChunkPrefix keys chunk objects in the flat namespace; Sweep's name
// parsers never match it, so chunk lifetime is governed exclusively by
// the refcount ledger and GC.
const objChunkPrefix = "chunk-"

// WriteChunk writes the chunk straight to its final key with a durable
// PUT, like payload objects: a torn PUT leaves garbage under a name no
// committed recipe references (the recipe always commits after its
// chunks), and a later writer of the same name truncates it away.
func (b *objectBackend) WriteChunk(name string, data []byte) error {
	cw, err := newChunkedWriter(b.fs, b.rt, b.key(objChunkPrefix+name))
	if err != nil {
		return err
	}
	if _, err := cw.Write(data); err != nil {
		return err
	}
	return cw.seal()
}

func (b *objectBackend) ReadChunk(name string) ([]byte, error) {
	return readFileFS(b.fs, b.key(objChunkPrefix+name))
}

func (b *objectBackend) RemoveChunk(name string) error {
	return b.fs.Remove(b.key(objChunkPrefix + name))
}

func (b *objectBackend) ListChunks() ([]string, error) {
	names, err := b.fs.ReadDir(b.dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, name := range names {
		if strings.HasPrefix(name, objChunkPrefix) {
			out = append(out, strings.TrimPrefix(name, objChunkPrefix))
		}
	}
	sort.Strings(out)
	return out, nil
}

func (b *objectBackend) QuarantinedPayloads() ([][]byte, error) {
	names, err := b.fs.ReadDir(b.dir)
	if err != nil {
		return nil, nil
	}
	var out [][]byte
	for _, name := range names {
		if !strings.HasPrefix(name, objQuarantinePrefix) {
			continue
		}
		if data, rerr := readFileFS(b.fs, b.key(name)); rerr == nil {
			out = append(out, data)
		}
	}
	return out, nil
}

// Quarantine copies the payload under a quarantine.-prefixed key and
// deletes the original — the flat-namespace equivalent of the posix
// backend's quarantine/ rename, with the same never-overwrite suffixing.
func (b *objectBackend) Quarantine(seq uint64) (string, error) {
	data, err := b.ReadPayload(seq)
	if err != nil {
		return "", err
	}
	taken := make(map[string]bool)
	if names, err := b.fs.ReadDir(b.dir); err == nil {
		for _, n := range names {
			taken[n] = true
		}
	}
	base := objQuarantinePrefix + genName(seq)
	name := base
	for i := 1; taken[name]; i++ {
		name = fmt.Sprintf("%s.%d", base, i)
	}
	qw, err := newChunkedWriter(b.fs, b.rt, b.key(name))
	if err != nil {
		return "", err
	}
	if _, err := qw.Write(data); err != nil {
		return "", err
	}
	if err := qw.seal(); err != nil {
		return "", err
	}
	if err := b.fs.Remove(b.key(genName(seq))); err != nil {
		return "", err
	}
	return name, nil
}
