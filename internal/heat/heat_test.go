package heat

import (
	"math"
	"testing"

	"lossyckpt/internal/core"
	"lossyckpt/internal/stats"
)

func testConfig() Config {
	c := DefaultConfig()
	c.Ny, c.Nx = 64, 48
	return c
}

func TestValidation(t *testing.T) {
	bad := []Config{
		{Ny: 2, Nx: 48, Alpha: 0.2, Dt: 1},
		{Ny: 64, Nx: 2, Alpha: 0.2, Dt: 1},
		{Ny: 64, Nx: 48, Alpha: 0, Dt: 1},
		{Ny: 64, Nx: 48, Alpha: 0.2, Dt: 0},
		{Ny: 64, Nx: 48, Alpha: 0.3, Dt: 1}, // violates FTCS bound
	}
	for i, c := range bad {
		if _, err := New(c); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestHeatsUpAndStaysStable(t *testing.T) {
	s, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	m0 := s.MaxTemperature()
	s.StepN(2000)
	m1 := s.MaxTemperature()
	if m1 <= m0 {
		t.Errorf("no heating: %g -> %g", m0, m1)
	}
	if math.IsNaN(m1) || math.IsInf(m1, 0) || m1 > 1e6 {
		t.Errorf("solver unstable: max temperature %g", m1)
	}
	if s.StepCount() != 2000 {
		t.Errorf("StepCount = %d", s.StepCount())
	}
}

func TestBoundariesFixed(t *testing.T) {
	s, _ := New(testConfig())
	s.StepN(500)
	f := s.Temperature()
	for x := 0; x < 48; x++ {
		if f.At(0, x) != 300 || f.At(63, x) != 300 {
			t.Fatalf("boundary drifted at x=%d", x)
		}
	}
	for y := 0; y < 64; y++ {
		if f.At(y, 0) != 300 || f.At(y, 47) != 300 {
			t.Fatalf("boundary drifted at y=%d", y)
		}
	}
}

func TestDeterminismAndClone(t *testing.T) {
	a, _ := New(testConfig())
	b, _ := New(testConfig())
	a.StepN(100)
	b.StepN(100)
	if !a.Temperature().Equal(b.Temperature()) {
		t.Error("identical runs diverged")
	}
	c := a.Clone()
	a.StepN(50)
	c.StepN(50)
	if !a.Temperature().Equal(c.Temperature()) {
		t.Error("clone evolution diverged")
	}
}

func TestExactRestartSeamless(t *testing.T) {
	ref, _ := New(testConfig())
	ref.StepN(300)
	snap := ref.Clone()
	ref.StepN(300)

	re, _ := New(testConfig())
	copy(re.Temperature().Data(), snap.Temperature().Data())
	re.SetStepCount(snap.StepCount())
	re.StepN(300)
	if !ref.Temperature().Equal(re.Temperature()) {
		t.Error("exact restart diverged")
	}
}

func TestHeatFieldCompressesExtremelyWell(t *testing.T) {
	// The smoothest workload: the lossy compressor should crush it with
	// tiny error.
	cfg := DefaultConfig() // 256x256: large enough that headers are noise
	s, _ := New(cfg)
	s.StepN(1000)
	f := s.Temperature()
	g, res, err := core.RoundTrip(f, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.CompressionRatePct() > 40 {
		t.Errorf("cr %.1f%% on a diffusion field; expected much lower", res.CompressionRatePct())
	}
	sum, _ := stats.Compare(f.Data(), g.Data())
	if sum.AvgPct > 0.5 {
		t.Errorf("avg error %.4f%% on a diffusion field", sum.AvgPct)
	}
}
