// Package heat is the third application substrate: a 2-D heat-diffusion
// solver with a localized source. It is the smoothest workload in the
// repository and exercises the compressor's 2-D transform path (the paper
// evaluates only 3-D NICAM arrays; CFD-style 2-D fields are the class of
// data its introduction motivates).
//
// The solver integrates ∂T/∂t = α∇²T + S with explicit FTCS time stepping,
// fixed-temperature (Dirichlet) boundaries, and a Gaussian heat source
// whose position orbits the domain center slowly, so the field keeps
// evolving over arbitrarily many steps instead of settling into a steady
// state.
package heat

import (
	"errors"
	"fmt"
	"math"

	"lossyckpt/internal/grid"
)

// ErrConfig indicates an invalid solver configuration.
var ErrConfig = errors.New("heat: invalid configuration")

// Config parameterizes the solver.
type Config struct {
	// Ny, Nx are the grid extents.
	Ny, Nx int
	// Alpha is the diffusivity; FTCS stability needs Alpha·Dt ≤ 0.25 on
	// the unit-spaced grid.
	Alpha float64
	// Dt is the time step.
	Dt float64
	// SourceAmp is the heat-source amplitude.
	SourceAmp float64
	// Boundary is the fixed boundary temperature.
	Boundary float64
}

// DefaultConfig returns a stable mid-sized setup.
func DefaultConfig() Config {
	return Config{Ny: 256, Nx: 256, Alpha: 0.2, Dt: 1, SourceAmp: 5, Boundary: 300}
}

func (c Config) validate() error {
	if c.Ny < 3 || c.Nx < 3 {
		return fmt.Errorf("%w: grid %dx%d", ErrConfig, c.Ny, c.Nx)
	}
	if !(c.Alpha > 0) || !(c.Dt > 0) {
		return fmt.Errorf("%w: alpha=%g dt=%g", ErrConfig, c.Alpha, c.Dt)
	}
	if c.Alpha*c.Dt > 0.25 {
		return fmt.Errorf("%w: alpha·dt = %g violates FTCS stability (≤0.25)", ErrConfig, c.Alpha*c.Dt)
	}
	return nil
}

// Solver is one heat-equation instance. Not safe for concurrent use.
type Solver struct {
	cfg  Config
	step int
	temp *grid.Field
	next *grid.Field
}

// New builds a solver with the whole domain at the boundary temperature.
func New(cfg Config) (*Solver, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	s := &Solver{cfg: cfg}
	var err error
	if s.temp, err = grid.New(cfg.Ny, cfg.Nx); err != nil {
		return nil, err
	}
	if s.next, err = grid.New(cfg.Ny, cfg.Nx); err != nil {
		return nil, err
	}
	s.temp.Fill(cfg.Boundary)
	s.next.Fill(cfg.Boundary)
	return s, nil
}

// Step advances one FTCS step.
func (s *Solver) Step() {
	ny, nx := s.cfg.Ny, s.cfg.Nx
	a := s.cfg.Alpha * s.cfg.Dt
	cur, nxt := s.temp.Data(), s.next.Data()

	// Orbiting Gaussian source.
	angle := 2 * math.Pi * float64(s.step) / 5000
	cy := float64(ny)/2 + float64(ny)/5*math.Sin(angle)
	cx := float64(nx)/2 + float64(nx)/5*math.Cos(angle)
	sigma2 := float64(min(nx, ny)) * float64(min(nx, ny)) / 400

	for y := 1; y < ny-1; y++ {
		for x := 1; x < nx-1; x++ {
			i := y*nx + x
			lap := cur[i-1] + cur[i+1] + cur[i-nx] + cur[i+nx] - 4*cur[i]
			dy, dx := float64(y)-cy, float64(x)-cx
			src := s.cfg.SourceAmp * math.Exp(-(dy*dy+dx*dx)/(2*sigma2))
			nxt[i] = cur[i] + a*lap + s.cfg.Dt*src*1e-2
		}
	}
	// Dirichlet boundaries stay fixed.
	for x := 0; x < nx; x++ {
		nxt[x] = s.cfg.Boundary
		nxt[(ny-1)*nx+x] = s.cfg.Boundary
	}
	for y := 0; y < ny; y++ {
		nxt[y*nx] = s.cfg.Boundary
		nxt[y*nx+nx-1] = s.cfg.Boundary
	}
	s.temp, s.next = s.next, s.temp
	s.step++
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// StepN advances n steps.
func (s *Solver) StepN(n int) {
	for i := 0; i < n; i++ {
		s.Step()
	}
}

// Temperature returns the live temperature field (the checkpointable
// state).
func (s *Solver) Temperature() *grid.Field { return s.temp }

// StepCount returns the number of completed steps.
func (s *Solver) StepCount() int { return s.step }

// SetStepCount overrides the step counter after a restore (the source
// position is time-dependent).
func (s *Solver) SetStepCount(n int) { s.step = n }

// Clone returns a deep copy of the solver.
func (s *Solver) Clone() *Solver {
	return &Solver{cfg: s.cfg, step: s.step, temp: s.temp.Clone(), next: s.next.Clone()}
}

// MaxTemperature returns the hottest cell, a cheap stability diagnostic.
func (s *Solver) MaxTemperature() float64 {
	_, max := s.temp.MinMax()
	return max
}
