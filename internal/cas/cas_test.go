package cas

import (
	"bytes"
	"hash/crc32"
	"math/rand"
	"testing"
)

func randomBytes(seed int64, n int) []byte {
	rng := rand.New(rand.NewSource(seed))
	b := make([]byte, n)
	rng.Read(b)
	return b
}

// TestSplitRoundTrip: chunks concatenate back to the input and respect
// the configured bounds.
func TestSplitRoundTrip(t *testing.T) {
	cfg := Config{Min: 1 << 10, Avg: 4 << 10, Max: 16 << 10}
	for _, n := range []int{0, 1, 100, 1 << 10, 4<<10 + 37, 1 << 20} {
		data := randomBytes(int64(n)+1, n)
		chunks, err := Split(cfg, data)
		if err != nil {
			t.Fatal(err)
		}
		var back []byte
		for i, c := range chunks {
			if len(c) > cfg.Max {
				t.Fatalf("n=%d chunk %d exceeds max: %d", n, i, len(c))
			}
			if i < len(chunks)-1 && len(c) < cfg.Min {
				t.Fatalf("n=%d non-final chunk %d below min: %d", n, i, len(c))
			}
			back = append(back, c...)
		}
		if !bytes.Equal(back, data) {
			t.Fatalf("n=%d: chunks do not reassemble input", n)
		}
	}
}

// TestChunkerDeterministic: identical input chunks identically however
// it is fed — the property replicated recipes rely on.
func TestChunkerDeterministic(t *testing.T) {
	cfg := Config{Min: 1 << 10, Avg: 4 << 10, Max: 16 << 10}
	data := randomBytes(7, 256<<10)
	whole, err := Split(cfg, data)
	if err != nil {
		t.Fatal(err)
	}
	// Feed the same bytes one-at-a-time-ish through a streaming chunker.
	var dribble [][]byte
	ch, err := NewChunker(cfg, func(c []byte) error {
		dribble = append(dribble, append([]byte(nil), c...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(data); {
		n := 1 + (off % 1000)
		if off+n > len(data) {
			n = len(data) - off
		}
		if _, err := ch.Write(data[off : off+n]); err != nil {
			t.Fatal(err)
		}
		off += n
	}
	if err := ch.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(whole) != len(dribble) {
		t.Fatalf("chunk count differs: %d vs %d", len(whole), len(dribble))
	}
	for i := range whole {
		if !bytes.Equal(whole[i], dribble[i]) {
			t.Fatalf("chunk %d differs between whole and dribbled feed", i)
		}
	}
}

// TestChunkerResync: a local edit only dirties a bounded number of
// chunks — cut points resynchronize after the edit.
func TestChunkerResync(t *testing.T) {
	cfg := Config{Min: 1 << 10, Avg: 4 << 10, Max: 16 << 10}
	data := randomBytes(42, 1<<20)
	edited := append([]byte(nil), data...)
	edited[len(edited)/2] ^= 0xFF

	sums := func(d []byte) map[Hash]bool {
		chunks, err := Split(cfg, d)
		if err != nil {
			t.Fatal(err)
		}
		m := make(map[Hash]bool, len(chunks))
		for _, c := range chunks {
			m[Sum(c)] = true
		}
		return m
	}
	a, b := sums(data), sums(edited)
	changed := 0
	for h := range b {
		if !a[h] {
			changed++
		}
	}
	// A one-byte edit must dirty only a handful of chunks out of ~256.
	if changed > 6 {
		t.Fatalf("one-byte edit dirtied %d chunks (of %d)", changed, len(b))
	}
	if changed == 0 {
		t.Fatal("edit dirtied no chunks — hashing is broken")
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("defaults invalid: %v", err)
	}
	bad := []Config{
		{Min: 10, Avg: 24, Max: 100}, // avg not a power of two
		{Min: 0, Avg: 4, Max: 8},     // min defaults above avg
		{Min: 16, Avg: 8, Max: 32},   // min > avg
		{Min: 4, Avg: 8, Max: 7},     // avg > max
		{Min: -1, Avg: 8, Max: 16},   // negative
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("case %d: expected validation error for %+v", i, c)
		}
	}
}

// TestRecipeRoundTrip: encode → decode is identity and the decoded
// recipe carries the logical size/CRC.
func TestRecipeRoundTrip(t *testing.T) {
	data := randomBytes(3, 300<<10)
	chunks, err := Split(Config{Min: 8 << 10, Avg: 32 << 10, Max: 128 << 10}, data)
	if err != nil {
		t.Fatal(err)
	}
	r := &Recipe{Size: uint64(len(data)), CRC: crc32.ChecksumIEEE(data)}
	for _, c := range chunks {
		r.Chunks = append(r.Chunks, Ref{Hash: Sum(c), Len: uint32(len(c))})
	}
	raw := r.Encode()
	if len(raw) != r.EncodedSize() {
		t.Fatalf("EncodedSize %d != actual %d", r.EncodedSize(), len(raw))
	}
	got, err := DecodeRecipe(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Size != r.Size || got.CRC != r.CRC || len(got.Chunks) != len(r.Chunks) {
		t.Fatalf("decoded recipe differs: %+v vs %+v", got, r)
	}
	for i := range got.Chunks {
		if got.Chunks[i] != r.Chunks[i] {
			t.Fatalf("chunk ref %d differs", i)
		}
	}
	if got.TotalLen() != r.Size {
		t.Fatalf("TotalLen %d != Size %d", got.TotalLen(), r.Size)
	}
	if !IsRecipe(raw) {
		t.Fatal("IsRecipe rejects a valid recipe")
	}
}

// TestRecipeCorruption: every single-byte corruption is rejected.
func TestRecipeCorruption(t *testing.T) {
	r := &Recipe{Size: 10, CRC: 123, Chunks: []Ref{{Hash: Sum([]byte("x")), Len: 10}}}
	raw := r.Encode()
	for i := range raw {
		bad := append([]byte(nil), raw...)
		bad[i] ^= 0x01
		if _, err := DecodeRecipe(bad); err == nil {
			t.Fatalf("corruption at byte %d accepted", i)
		}
	}
	if _, err := DecodeRecipe(raw[:len(raw)-3]); err == nil {
		t.Fatal("truncated recipe accepted")
	}
	if _, err := DecodeRecipe(nil); err == nil {
		t.Fatal("empty recipe accepted")
	}
}

// TestIndexRefcounts: add/release bookkeeping and zero-crossing report.
func TestIndexRefcounts(t *testing.T) {
	x := NewIndex()
	a := Ref{Hash: Sum([]byte("a")), Len: 100}
	b := Ref{Hash: Sum([]byte("b")), Len: 200}
	x.Add([]Ref{a, b})
	x.Add([]Ref{a})
	if !x.Has(a.Hash) || !x.Has(b.Hash) {
		t.Fatal("added chunks not present")
	}
	if x.Refs(a.Hash) != 2 || x.Refs(b.Hash) != 1 {
		t.Fatalf("refs: a=%d b=%d", x.Refs(a.Hash), x.Refs(b.Hash))
	}
	if x.Chunks() != 2 || x.Bytes() != 300 {
		t.Fatalf("chunks=%d bytes=%d", x.Chunks(), x.Bytes())
	}
	dead := x.Release([]Ref{a, b})
	if len(dead) != 1 || dead[0] != b.Hash {
		t.Fatalf("first release dead=%v", dead)
	}
	dead = x.Release([]Ref{a})
	if len(dead) != 1 || dead[0] != a.Hash {
		t.Fatalf("second release dead=%v", dead)
	}
	if x.Chunks() != 0 || x.Bytes() != 0 {
		t.Fatal("index not empty after full release")
	}
	// Releasing untracked chunks is a no-op, never a deletion order.
	if dead := x.Release([]Ref{a}); dead != nil {
		t.Fatalf("untracked release reported dead=%v", dead)
	}
}

func TestParseHash(t *testing.T) {
	h := Sum([]byte("hello"))
	got, err := ParseHash(h.String())
	if err != nil || got != h {
		t.Fatalf("ParseHash(%s) = %v, %v", h, got, err)
	}
	if _, err := ParseHash("zz"); err == nil {
		t.Fatal("bad hex accepted")
	}
	if _, err := ParseHash("abcd"); err == nil {
		t.Fatal("short hash accepted")
	}
}
