package cas

// Index is the in-memory refcount ledger over live chunks. It is not
// persisted: the store rebuilds it at Open by decoding the recipes of
// every indexed (and quarantined) generation, keeps it current across
// commits and prunes, and a mark-and-sweep GC pass reconstructs it from
// scratch as the crash backstop — so a counter can never drift from the
// durable truth for longer than one GC cycle.
//
// Index is not concurrency-safe; the store drives it under its mutex.
type Index struct {
	refs map[Hash]*chunkInfo
}

type chunkInfo struct {
	size uint32
	refs int
}

// NewIndex returns an empty ledger.
func NewIndex() *Index {
	return &Index{refs: make(map[Hash]*chunkInfo)}
}

// Has reports whether the index holds a live reference to h — the
// presence probe the commit path uses to skip rewriting (and, upstream,
// re-compressing) a chunk that already exists.
func (x *Index) Has(h Hash) bool {
	ci, ok := x.refs[h]
	return ok && ci.refs > 0
}

// Add takes one reference on every chunk of refs (a committed or
// reloaded recipe).
func (x *Index) Add(refs []Ref) {
	for _, r := range refs {
		if ci, ok := x.refs[r.Hash]; ok {
			ci.refs++
			continue
		}
		x.refs[r.Hash] = &chunkInfo{size: r.Len, refs: 1}
	}
}

// Release drops one reference on every chunk of refs and returns the
// addresses that reached zero — the chunks the store may now delete.
// A release on an untracked chunk is ignored (the fail-safe direction:
// never report a chunk deletable on bookkeeping confusion).
func (x *Index) Release(refs []Ref) []Hash {
	var dead []Hash
	for _, r := range refs {
		ci, ok := x.refs[r.Hash]
		if !ok {
			continue
		}
		ci.refs--
		if ci.refs <= 0 {
			delete(x.refs, r.Hash)
			dead = append(dead, r.Hash)
		}
	}
	return dead
}

// Chunks returns the number of live chunks.
func (x *Index) Chunks() int { return len(x.refs) }

// Bytes returns the total physical bytes of live chunks.
func (x *Index) Bytes() int64 {
	var n int64
	for _, ci := range x.refs {
		n += int64(ci.size)
	}
	return n
}

// Refs returns the reference count of h (0 when untracked) — the fsck
// surface for verifying on-disk refcounts against recomputed truth.
func (x *Index) Refs(h Hash) int {
	if ci, ok := x.refs[h]; ok {
		return ci.refs
	}
	return 0
}

// Hashes returns every live chunk address, in map order.
func (x *Index) Hashes() []Hash {
	out := make([]Hash, 0, len(x.refs))
	for h := range x.refs {
		out = append(out, h)
	}
	return out
}
