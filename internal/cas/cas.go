// Package cas implements the content-addressed chunk layer under the
// store's dedup path: a content-defined chunker (gear rolling hash with
// min/avg/max bounds), SHA-256 chunk addressing, a recipe codec that
// turns a generation payload into a list of chunk references, and an
// in-memory refcount index the store rebuilds at Open and keeps current
// across commits, prunes and GC passes.
//
// The package is pure — no filesystem, no store dependency — so the
// chunk math can be fuzzed and property-tested in isolation and reused
// verbatim by every backend.
package cas

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
)

// HashSize is the byte length of a chunk address (SHA-256).
const HashSize = 32

// Hash addresses one chunk by the SHA-256 of its content.
type Hash [HashSize]byte

// Sum returns the content address of data.
func Sum(data []byte) Hash { return sha256.Sum256(data) }

// String renders the address as lowercase hex.
func (h Hash) String() string { return hex.EncodeToString(h[:]) }

// ParseHash inverts Hash.String.
func ParseHash(s string) (Hash, error) {
	var h Hash
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != HashSize {
		return h, fmt.Errorf("cas: bad chunk hash %q", s)
	}
	copy(h[:], b)
	return h, nil
}

// Default chunker bounds. The average targets the store's commit-chunk
// granularity (256 KiB) so one content-defined chunk is one bounded
// write; min/max keep the size distribution tight enough that a single
// flipped byte dirties O(1) chunks.
const (
	DefaultMinChunk = 64 << 10
	DefaultAvgChunk = 256 << 10
	DefaultMaxChunk = 1 << 20
)

// Config bounds the content-defined chunker. Cut points depend only on
// content and these bounds, so two stores with the same Config chunk
// identical payloads identically — the property replicated commits rely
// on for byte-exact quorum voting over recipes.
type Config struct {
	// Min is the smallest chunk the cutter may emit (except the final
	// tail). 0 means DefaultMinChunk.
	Min int
	// Avg is the target average chunk size; it must be a power of two
	// (the cutter masks the rolling hash with Avg-1). 0 means
	// DefaultAvgChunk.
	Avg int
	// Max force-cuts a chunk regardless of content. 0 means
	// DefaultMaxChunk.
	Max int
}

func (c Config) withDefaults() Config {
	if c.Min == 0 {
		c.Min = DefaultMinChunk
	}
	if c.Avg == 0 {
		c.Avg = DefaultAvgChunk
	}
	if c.Max == 0 {
		c.Max = DefaultMaxChunk
	}
	return c
}

// Validate rejects bounds the cutter cannot honor.
func (c Config) Validate() error {
	c = c.withDefaults()
	if c.Avg&(c.Avg-1) != 0 {
		return fmt.Errorf("cas: average chunk size %d is not a power of two", c.Avg)
	}
	if c.Min <= 0 || c.Min > c.Avg || c.Avg > c.Max {
		return fmt.Errorf("cas: chunk bounds min=%d avg=%d max=%d violate 0 < min <= avg <= max", c.Min, c.Avg, c.Max)
	}
	return nil
}

// gearTable is the 256-entry random table driving the gear rolling
// hash. It is generated once from a fixed splitmix64 seed so cut points
// are stable across processes, architectures and releases — a chunk
// written by one store must be findable by every other.
var gearTable = func() [256]uint64 {
	var t [256]uint64
	state := uint64(0x9E3779B97F4A7C15)
	for i := range t {
		state += 0x9E3779B97F4A7C15
		z := state
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		t[i] = z ^ (z >> 31)
	}
	return t
}()

// Chunker is a streaming content-defined cutter: bytes go in via Write,
// complete chunks come out through the emit callback, and Flush emits
// the final partial chunk. Cut points use the gear hash — h = h<<1 +
// gear[b] — masked to the average size, with min/max bounds; because
// the hash has a finite window (64 bytes effectively), cut points
// resynchronize shortly after any local edit, which is what makes slab
// boundaries in the chunked compression layout stable cut points
// without explicit alignment plumbing.
type Chunker struct {
	cfg  Config
	mask uint64
	buf  []byte
	emit func(chunk []byte) error
}

// NewChunker builds a streaming cutter delivering chunks to emit. The
// chunk slice passed to emit is only valid during the call.
func NewChunker(cfg Config, emit func(chunk []byte) error) (*Chunker, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Chunker{
		cfg:  cfg,
		mask: uint64(cfg.Avg - 1),
		buf:  make([]byte, 0, cfg.Max),
		emit: emit,
	}, nil
}

// Write implements io.Writer, emitting every complete chunk found in
// the stream so far.
func (c *Chunker) Write(p []byte) (int, error) {
	written := len(p)
	for len(p) > 0 {
		take := c.cfg.Max - len(c.buf)
		if take > len(p) {
			take = len(p)
		}
		c.buf = append(c.buf, p[:take]...)
		p = p[take:]
		for {
			cut := c.cut()
			if cut == 0 {
				break
			}
			if err := c.emit(c.buf[:cut]); err != nil {
				return 0, err
			}
			c.buf = append(c.buf[:0], c.buf[cut:]...)
		}
	}
	return written, nil
}

// cut finds the first content-defined cut point in the buffered bytes,
// or 0 when the buffer holds no complete chunk yet.
func (c *Chunker) cut() int {
	if len(c.buf) < c.cfg.Min {
		return 0
	}
	var h uint64
	// Warm the hash over the window before Min so the boundary decision
	// at Min already has full context.
	warm := c.cfg.Min - 64
	if warm < 0 {
		warm = 0
	}
	for i := warm; i < c.cfg.Min; i++ {
		h = h<<1 + gearTable[c.buf[i]]
	}
	for i := c.cfg.Min; i < len(c.buf); i++ {
		if h&c.mask == 0 {
			return i
		}
		h = h<<1 + gearTable[c.buf[i]]
	}
	if len(c.buf) >= c.cfg.Max {
		return c.cfg.Max
	}
	return 0
}

// Flush emits the final partial chunk, if any. The chunker is reusable
// afterwards (a fresh stream starts clean).
func (c *Chunker) Flush() error {
	if len(c.buf) == 0 {
		return nil
	}
	chunk := c.buf
	c.buf = c.buf[:0]
	return c.emit(chunk)
}

var _ io.Writer = (*Chunker)(nil)

// Split cuts data into content-defined chunks in one call — the
// convenience used by tests and by PutGeneration's buffered path.
func Split(cfg Config, data []byte) ([][]byte, error) {
	var out [][]byte
	ch, err := NewChunker(cfg, func(chunk []byte) error {
		out = append(out, append([]byte(nil), chunk...))
		return nil
	})
	if err != nil {
		return nil, err
	}
	if _, err := ch.Write(data); err != nil {
		return nil, err
	}
	if err := ch.Flush(); err != nil {
		return nil, err
	}
	return out, nil
}
