package cas

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// ErrRecipe indicates a structurally invalid or checksum-failing recipe
// image. The store treats it like any other corrupt payload: the
// generation is quarantined, its chunks stay alive until GC re-marks.
var ErrRecipe = errors.New("cas: malformed recipe")

const (
	recipeMagic   = 0x31524B4C // "LKR1"
	recipeVersion = 1
	// maxRecipeChunks bounds the chunk count a recipe header may declare
	// so corrupt input cannot force a huge allocation (2^20 chunks at the
	// 64 KiB minimum is a 64 GiB generation — far past any payload here).
	maxRecipeChunks = 1 << 20
	recipeHeader    = 4 + 2 + 8 + 4 + 4 // magic, version, size, crc, count
	recipeEntry     = HashSize + 4      // hash, length
)

// Ref is one chunk reference inside a recipe: the content address plus
// the chunk's length (so logical offsets and physical accounting never
// need to read the chunk itself).
type Ref struct {
	Hash Hash
	Len  uint32
}

// Recipe is the decoded form of a dedup generation payload: the logical
// payload's size and CRC-32 (matching the manifest record, which always
// describes logical bytes) plus the ordered chunk references that
// reassemble it.
type Recipe struct {
	Size   uint64
	CRC    uint32
	Chunks []Ref
}

// TotalLen sums the chunk lengths — it must equal Size for a recipe to
// decode at all, so it mainly serves tests.
func (r *Recipe) TotalLen() uint64 {
	var n uint64
	for _, c := range r.Chunks {
		n += uint64(c.Len)
	}
	return n
}

// EncodedSize returns the byte length Encode will produce.
func (r *Recipe) EncodedSize() int {
	return recipeHeader + recipeEntry*len(r.Chunks) + 4
}

// Encode serializes the recipe with a trailing CRC-32 of everything
// before it, mirroring the manifest codec's torn-tail detection.
func (r *Recipe) Encode() []byte {
	out := make([]byte, 0, r.EncodedSize())
	var b8 [8]byte
	var b4 [4]byte
	var b2 [2]byte

	binary.LittleEndian.PutUint32(b4[:], recipeMagic)
	out = append(out, b4[:]...)
	binary.LittleEndian.PutUint16(b2[:], recipeVersion)
	out = append(out, b2[:]...)
	binary.LittleEndian.PutUint64(b8[:], r.Size)
	out = append(out, b8[:]...)
	binary.LittleEndian.PutUint32(b4[:], r.CRC)
	out = append(out, b4[:]...)
	binary.LittleEndian.PutUint32(b4[:], uint32(len(r.Chunks)))
	out = append(out, b4[:]...)
	for _, c := range r.Chunks {
		out = append(out, c.Hash[:]...)
		binary.LittleEndian.PutUint32(b4[:], c.Len)
		out = append(out, b4[:]...)
	}
	binary.LittleEndian.PutUint32(b4[:], crc32.ChecksumIEEE(out))
	return append(out, b4[:]...)
}

// DecodeRecipe parses and verifies a recipe image. Every header-declared
// size is validated against the remaining input before any allocation,
// chunk lengths must be positive and sum exactly to the declared logical
// size — corrupt input returns ErrRecipe, never panics.
func DecodeRecipe(raw []byte) (*Recipe, error) {
	if len(raw) < recipeHeader+4 {
		return nil, fmt.Errorf("%w: %d bytes", ErrRecipe, len(raw))
	}
	body, tail := raw[:len(raw)-4], raw[len(raw)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrRecipe)
	}
	if binary.LittleEndian.Uint32(body[0:4]) != recipeMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrRecipe)
	}
	if v := binary.LittleEndian.Uint16(body[4:6]); v != recipeVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrRecipe, v)
	}
	r := &Recipe{
		Size: binary.LittleEndian.Uint64(body[6:14]),
		CRC:  binary.LittleEndian.Uint32(body[14:18]),
	}
	count := binary.LittleEndian.Uint32(body[18:22])
	if count > maxRecipeChunks {
		return nil, fmt.Errorf("%w: chunk count %d exceeds cap", ErrRecipe, count)
	}
	if len(body) != recipeHeader+recipeEntry*int(count) {
		return nil, fmt.Errorf("%w: %d bytes for %d chunks", ErrRecipe, len(raw), count)
	}
	r.Chunks = make([]Ref, count)
	off := recipeHeader
	var total uint64
	for i := range r.Chunks {
		copy(r.Chunks[i].Hash[:], body[off:off+HashSize])
		r.Chunks[i].Len = binary.LittleEndian.Uint32(body[off+HashSize:])
		if r.Chunks[i].Len == 0 {
			return nil, fmt.Errorf("%w: zero-length chunk %d", ErrRecipe, i)
		}
		total += uint64(r.Chunks[i].Len)
		off += recipeEntry
	}
	if total != r.Size {
		return nil, fmt.Errorf("%w: chunk lengths sum to %d, header declares %d", ErrRecipe, total, r.Size)
	}
	return r, nil
}

// IsRecipe reports whether raw decodes as a recipe — the cheap probe
// fsck and GC use on quarantined payloads of unknown provenance.
func IsRecipe(raw []byte) bool {
	_, err := DecodeRecipe(raw)
	return err == nil
}
