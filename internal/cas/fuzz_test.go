package cas

import (
	"bytes"
	"hash/crc32"
	"testing"
)

// FuzzDecodeRecipe: adversarial recipe images must never panic, and a
// valid image must re-encode to the identical bytes.
func FuzzDecodeRecipe(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("LKR1"))
	r := &Recipe{Size: 5, CRC: crc32.ChecksumIEEE([]byte("hello")),
		Chunks: []Ref{{Hash: Sum([]byte("hello")), Len: 5}}}
	f.Add(r.Encode())
	empty := &Recipe{}
	f.Add(empty.Encode())
	f.Fuzz(func(t *testing.T, raw []byte) {
		rec, err := DecodeRecipe(raw)
		if err != nil {
			return
		}
		if got := rec.Encode(); !bytes.Equal(got, raw) {
			t.Fatalf("decode/encode not identity: %d vs %d bytes", len(got), len(raw))
		}
		if rec.TotalLen() != rec.Size {
			t.Fatalf("accepted recipe with TotalLen %d != Size %d", rec.TotalLen(), rec.Size)
		}
	})
}

// FuzzChunker: arbitrary input with arbitrary (valid) bounds must chunk
// into pieces that respect the bounds and reassemble exactly.
func FuzzChunker(f *testing.F) {
	f.Add([]byte("hello world"), uint8(2))
	f.Add(make([]byte, 100000), uint8(4))
	f.Fuzz(func(t *testing.T, data []byte, avgLog uint8) {
		avg := 1 << (4 + avgLog%8) // 16B .. 2KiB averages
		cfg := Config{Min: avg / 4, Avg: avg, Max: avg * 4}
		if cfg.Min == 0 {
			cfg.Min = 1
		}
		chunks, err := Split(cfg, data)
		if err != nil {
			t.Fatal(err)
		}
		var back []byte
		for i, c := range chunks {
			if len(c) > cfg.Max || len(c) == 0 {
				t.Fatalf("chunk %d size %d outside (0,%d]", i, len(c), cfg.Max)
			}
			back = append(back, c...)
		}
		if !bytes.Equal(back, data) {
			t.Fatal("chunks do not reassemble input")
		}
	})
}
