// Package bitpack provides the packed bitmap used by the compressor's
// output format (Sasaki et al., IPDPS 2015, §III-D): one bit per
// high-frequency value recording whether that value was quantized/encoded
// (1) or stored verbatim (0), so decompression knows how to interleave the
// code stream with the passthrough stream.
package bitpack

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/bits"
)

// ErrFormat indicates malformed serialized bitmap data.
var ErrFormat = errors.New("bitpack: malformed serialized bitmap")

// Bitmap is a fixed-length sequence of bits. The zero value is an empty
// bitmap; use New or FromBools for a sized one.
type Bitmap struct {
	n     int
	words []uint64
}

// New returns an all-zero bitmap of n bits.
func New(n int) *Bitmap {
	if n < 0 {
		panic(fmt.Sprintf("bitpack: negative size %d", n))
	}
	return &Bitmap{n: n, words: make([]uint64, (n+63)/64)}
}

// FromBools packs a []bool into a Bitmap.
func FromBools(b []bool) *Bitmap {
	m := New(len(b))
	for i, v := range b {
		if v {
			m.Set(i, true)
		}
	}
	return m
}

// Len returns the number of bits.
func (m *Bitmap) Len() int { return m.n }

// Get returns bit i.
func (m *Bitmap) Get(i int) bool {
	if i < 0 || i >= m.n {
		panic(fmt.Sprintf("bitpack: index %d out of range [0,%d)", i, m.n))
	}
	return m.words[i/64]&(1<<uint(i%64)) != 0
}

// Set assigns bit i.
func (m *Bitmap) Set(i int, v bool) {
	if i < 0 || i >= m.n {
		panic(fmt.Sprintf("bitpack: index %d out of range [0,%d)", i, m.n))
	}
	if v {
		m.words[i/64] |= 1 << uint(i%64)
	} else {
		m.words[i/64] &^= 1 << uint(i%64)
	}
}

// Count returns the number of set bits.
func (m *Bitmap) Count() int {
	c := 0
	for _, w := range m.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// AllTrue reports whether every bit is set. An empty bitmap is all-true.
func (m *Bitmap) AllTrue() bool { return m.Count() == m.n }

// Bools unpacks the bitmap into a []bool.
func (m *Bitmap) Bools() []bool {
	out := make([]bool, m.n)
	for i := range out {
		out[i] = m.Get(i)
	}
	return out
}

// Equal reports whether two bitmaps have identical length and contents.
func (m *Bitmap) Equal(o *Bitmap) bool {
	if m.n != o.n {
		return false
	}
	for i, w := range m.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

// Serialized layout (little-endian):
//
//	uint64 bit count
//	uint8  flag: 0 = packed words follow, 1 = all-true (no payload),
//	             2 = all-false (no payload)
//	uint64 words (only when flag == 0)
//
// The flags implement the design note in DESIGN.md §5: the simple
// quantization method encodes every value, so its all-ones bitmap costs one
// byte instead of n/8 bytes.
const (
	flagPacked   = 0
	flagAllTrue  = 1
	flagAllFalse = 2
)

// WriteTo serializes the bitmap. It implements io.WriterTo.
func (m *Bitmap) WriteTo(w io.Writer) (int64, error) {
	var hdr [9]byte
	binary.LittleEndian.PutUint64(hdr[0:], uint64(m.n))
	count := m.Count()
	switch {
	case count == m.n:
		hdr[8] = flagAllTrue
	case count == 0:
		hdr[8] = flagAllFalse
	default:
		hdr[8] = flagPacked
	}
	n, err := w.Write(hdr[:])
	total := int64(n)
	if err != nil || hdr[8] != flagPacked {
		return total, err
	}
	buf := make([]byte, 8*len(m.words))
	for i, word := range m.words {
		binary.LittleEndian.PutUint64(buf[8*i:], word)
	}
	n, err = w.Write(buf)
	return total + int64(n), err
}

// Read deserializes a bitmap written by WriteTo, with a permissive size
// cap. Callers that know the expected bit count should prefer ReadMax: a
// forged header claiming a huge size otherwise forces a large allocation
// before any payload is read.
func Read(r io.Reader) (*Bitmap, error) {
	return ReadMax(r, 1<<33)
}

// ReadMax deserializes a bitmap, rejecting any claimed size above maxBits
// before allocating.
func ReadMax(r io.Reader, maxBits uint64) (*Bitmap, error) {
	var hdr [9]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrFormat, err)
	}
	n := binary.LittleEndian.Uint64(hdr[0:])
	if n > maxBits {
		return nil, fmt.Errorf("%w: size %d above limit %d", ErrFormat, n, maxBits)
	}
	m := New(int(n))
	switch hdr[8] {
	case flagAllFalse:
		return m, nil
	case flagAllTrue:
		for i := range m.words {
			m.words[i] = ^uint64(0)
		}
		m.trimTail()
		return m, nil
	case flagPacked:
		buf := make([]byte, 8*len(m.words))
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, fmt.Errorf("%w: payload: %v", ErrFormat, err)
		}
		for i := range m.words {
			m.words[i] = binary.LittleEndian.Uint64(buf[8*i:])
		}
		m.trimTail()
		return m, nil
	default:
		return nil, fmt.Errorf("%w: unknown flag %d", ErrFormat, hdr[8])
	}
}

// trimTail clears bits beyond n in the last word so Count and Equal stay
// consistent regardless of input.
func (m *Bitmap) trimTail() {
	if m.n%64 != 0 && len(m.words) > 0 {
		m.words[len(m.words)-1] &= (1 << uint(m.n%64)) - 1
	}
}

// SerializedSize returns the number of bytes WriteTo will produce.
func (m *Bitmap) SerializedSize() int {
	c := m.Count()
	if c == 0 || c == m.n {
		return 9
	}
	return 9 + 8*len(m.words)
}
