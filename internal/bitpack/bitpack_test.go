package bitpack

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSetGetCount(t *testing.T) {
	m := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if m.Get(i) {
			t.Fatalf("fresh bitmap has bit %d set", i)
		}
		m.Set(i, true)
		if !m.Get(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	if got := m.Count(); got != 8 {
		t.Errorf("Count = %d, want 8", got)
	}
	m.Set(63, false)
	if m.Get(63) || m.Count() != 7 {
		t.Error("clearing bit 63 failed")
	}
}

func TestPanicsOutOfRange(t *testing.T) {
	m := New(10)
	for _, i := range []int{-1, 10} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Get(%d) did not panic", i)
				}
			}()
			m.Get(i)
		}()
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Set(%d) did not panic", i)
				}
			}()
			m.Set(i, true)
		}()
	}
}

func TestFromBoolsBoolsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 63, 64, 65, 1000} {
		b := make([]bool, n)
		for i := range b {
			b[i] = rng.Intn(2) == 0
		}
		m := FromBools(b)
		out := m.Bools()
		if len(out) != n {
			t.Fatalf("n=%d: Bools len %d", n, len(out))
		}
		for i := range b {
			if b[i] != out[i] {
				t.Fatalf("n=%d: bit %d mismatch", n, i)
			}
		}
	}
}

func TestAllTrue(t *testing.T) {
	m := New(65)
	if m.AllTrue() {
		t.Error("zero bitmap reported AllTrue")
	}
	for i := 0; i < 65; i++ {
		m.Set(i, true)
	}
	if !m.AllTrue() {
		t.Error("full bitmap not AllTrue")
	}
	if !New(0).AllTrue() {
		t.Error("empty bitmap should be AllTrue")
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cases := [][]bool{
		nil,
		{true},
		{false},
		make([]bool, 64),  // all false
		make([]bool, 200), // all false, multi-word
	}
	allTrue := make([]bool, 200)
	for i := range allTrue {
		allTrue[i] = true
	}
	cases = append(cases, allTrue)
	mixed := make([]bool, 777)
	for i := range mixed {
		mixed[i] = rng.Intn(3) == 0
	}
	cases = append(cases, mixed)
	for ci, b := range cases {
		m := FromBools(b)
		var buf bytes.Buffer
		n, err := m.WriteTo(&buf)
		if err != nil {
			t.Fatalf("case %d: %v", ci, err)
		}
		if int(n) != buf.Len() {
			t.Errorf("case %d: WriteTo returned %d, wrote %d", ci, n, buf.Len())
		}
		if int(n) != m.SerializedSize() {
			t.Errorf("case %d: SerializedSize = %d, actual %d", ci, m.SerializedSize(), n)
		}
		got, err := Read(&buf)
		if err != nil {
			t.Fatalf("case %d: Read: %v", ci, err)
		}
		if !m.Equal(got) {
			t.Errorf("case %d: round trip mismatch", ci)
		}
	}
}

func TestCompactFlagsSaveSpace(t *testing.T) {
	// All-true and all-false bitmaps serialize to the 9-byte header only.
	full := New(100000)
	for i := 0; i < 100000; i++ {
		full.Set(i, true)
	}
	if full.SerializedSize() != 9 {
		t.Errorf("all-true size = %d, want 9", full.SerializedSize())
	}
	if New(100000).SerializedSize() != 9 {
		t.Error("all-false not compact")
	}
	half := New(100000)
	half.Set(5, true)
	if half.SerializedSize() <= 9 {
		t.Error("mixed bitmap should be larger than header")
	}
}

func TestReadErrors(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte{1, 2})); err == nil {
		t.Error("truncated header: expected error")
	}
	// Bad flag.
	bad := make([]byte, 9)
	bad[8] = 7
	if _, err := Read(bytes.NewReader(bad)); err == nil {
		t.Error("unknown flag: expected error")
	}
	// Truncated payload.
	m := FromBools([]bool{true, false, true})
	var buf bytes.Buffer
	_, _ = m.WriteTo(&buf)
	if _, err := Read(bytes.NewReader(buf.Bytes()[:10])); err == nil {
		t.Error("truncated payload: expected error")
	}
	// Implausible size.
	huge := make([]byte, 9)
	huge[7] = 0xFF // 2^56-ish bit count
	if _, err := Read(bytes.NewReader(huge)); err == nil {
		t.Error("implausible size: expected error")
	}
}

// Property: FromBools/Bools and serialization round trips are identities.
func TestQuickRoundTrips(t *testing.T) {
	fn := func(b []bool) bool {
		m := FromBools(b)
		if m.Len() != len(b) {
			return false
		}
		out := m.Bools()
		for i := range b {
			if b[i] != out[i] {
				return false
			}
		}
		var buf bytes.Buffer
		if _, err := m.WriteTo(&buf); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		return m.Equal(got) && got.Count() == m.Count()
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
