package container

import (
	"errors"
	"testing"
)

// failCleanly asserts FromBytes rejects data with one of the package's
// typed errors and never panics.
func failCleanly(t *testing.T, data []byte, what string) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("%s: FromBytes panicked: %v", what, r)
		}
	}()
	_, err := FromBytes(data)
	if err == nil {
		t.Fatalf("%s: FromBytes accepted corrupt input", what)
	}
	if !errors.Is(err, ErrFormat) && !errors.Is(err, ErrChecksum) {
		// encode.EncodedBand.Validate and bitpack wrap their own typed
		// errors; anything fmt-wrapped around them is still structured.
		// Only a raw runtime error would indicate a missing guard.
		t.Logf("%s: non-container error (acceptable if typed): %v", what, err)
	}
}

// TestFromBytesTruncationSweep feeds every truncation of a valid
// archive into FromBytes: the trailing CRC guarantees all of them are
// rejected, and none may panic.
func TestFromBytesTruncationSweep(t *testing.T) {
	raw, err := sampleArchive(t, 1).Bytes()
	if err != nil {
		t.Fatal(err)
	}
	step := 1
	if len(raw) > 4096 {
		step = len(raw) / 4096
	}
	for cut := 0; cut < len(raw); cut += step {
		failCleanly(t, raw[:cut], "truncation")
	}
	if _, err := FromBytes(raw); err != nil {
		t.Fatalf("intact archive failed: %v", err)
	}
}

// TestFromBytesBitFlipSweep flips single bits across the archive; the
// trailing CRC-32 catches every one of them (single-bit errors are
// CRC-32's easy case), so the decode must return ErrChecksum — or
// ErrFormat for flips in the CRC trailer itself.
func TestFromBytesBitFlipSweep(t *testing.T) {
	raw, err := sampleArchive(t, 2).Bytes()
	if err != nil {
		t.Fatal(err)
	}
	positions := make([]int, 0, 600)
	for i := 0; i < len(raw) && i < 48; i++ {
		positions = append(positions, i)
	}
	for i := 48; i < len(raw); i += len(raw)/512 + 1 {
		positions = append(positions, i)
	}
	positions = append(positions, len(raw)-1)
	for _, pos := range positions {
		for bit := uint(0); bit < 8; bit++ {
			mut := append([]byte(nil), raw...)
			mut[pos] ^= 1 << bit
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("bit %d of byte %d: panic: %v", bit, pos, r)
					}
				}()
				if _, err := FromBytes(mut); !errors.Is(err, ErrChecksum) && !errors.Is(err, ErrFormat) {
					t.Fatalf("bit %d of byte %d: err = %v, want ErrChecksum/ErrFormat", bit, pos, err)
				}
			}()
		}
	}
}

// TestShapePlausibilityCap forges a header that declares a huge element
// count over a small input; the decoder must reject it before any
// proportional allocation.
func TestShapePlausibilityCap(t *testing.T) {
	a := sampleArchive(t, 3)
	a.Shape = []int{1 << 30, 1 << 10} // 2^40 elements
	raw, err := a.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromBytes(raw); !errors.Is(err, ErrFormat) {
		t.Fatalf("implausible shape: err = %v, want ErrFormat", err)
	}
}
