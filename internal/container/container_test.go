package container

import (
	"bytes"
	"errors"
	"hash/crc32"
	"math/rand"
	"testing"

	"lossyckpt/internal/encode"
	"lossyckpt/internal/quant"
	"lossyckpt/internal/wavelet"
)

func crc32IEEE(b []byte) uint32 { return crc32.ChecksumIEEE(b) }

func sampleArchive(t *testing.T, seed int64) *Archive {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	high := make([]float64, 3000)
	for i := range high {
		if rng.Float64() < 0.9 {
			high[i] = rng.NormFloat64() * 0.01
		} else {
			high[i] = rng.NormFloat64() * 4
		}
	}
	q, err := quant.Quantize(high, quant.Config{Method: quant.Proposed, Divisions: 32})
	if err != nil {
		t.Fatal(err)
	}
	band, err := encode.Encode(high, q)
	if err != nil {
		t.Fatal(err)
	}
	low := make([]float64, 1000)
	for i := range low {
		low[i] = rng.NormFloat64() * 100
	}
	return &Archive{
		Params: Params{
			Scheme:         wavelet.Haar,
			Method:         quant.Proposed,
			Levels:         1,
			Divisions:      32,
			SpikeDivisions: 64,
		},
		Shape: []int{40, 100},
		Low:   low,
		Bands: []*encode.EncodedBand{band},
	}
}

func archivesEqual(a, b *Archive) bool {
	if a.Params != b.Params || len(a.Shape) != len(b.Shape) {
		return false
	}
	for i := range a.Shape {
		if a.Shape[i] != b.Shape[i] {
			return false
		}
	}
	if len(a.Low) != len(b.Low) {
		return false
	}
	for i := range a.Low {
		if a.Low[i] != b.Low[i] {
			return false
		}
	}
	if len(a.Bands) != len(b.Bands) {
		return false
	}
	for bi := range a.Bands {
		ab, bb := a.Bands[bi], b.Bands[bi]
		if ab.N != bb.N || !ab.Bitmap.Equal(bb.Bitmap) {
			return false
		}
		if !bytes.Equal(ab.Codes, bb.Codes) {
			return false
		}
		if len(ab.Averages) != len(bb.Averages) || len(ab.Passthrough) != len(bb.Passthrough) {
			return false
		}
		for i := range ab.Averages {
			if ab.Averages[i] != bb.Averages[i] {
				return false
			}
		}
		for i := range ab.Passthrough {
			if ab.Passthrough[i] != bb.Passthrough[i] {
				return false
			}
		}
	}
	return true
}

func TestRoundTrip(t *testing.T) {
	a := sampleArchive(t, 1)
	raw, err := a.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != a.SerializedSize() {
		t.Errorf("SerializedSize = %d, actual %d", a.SerializedSize(), len(raw))
	}
	b, err := FromBytes(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !archivesEqual(a, b) {
		t.Error("round trip mismatch")
	}
}

func TestReadArchiveFromReader(t *testing.T) {
	a := sampleArchive(t, 2)
	var buf bytes.Buffer
	if _, err := a.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	b, err := ReadArchive(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !archivesEqual(a, b) {
		t.Error("reader round trip mismatch")
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	a := sampleArchive(t, 3)
	raw, _ := a.Bytes()
	for _, pos := range []int{10, len(raw) / 2, len(raw) - 10} {
		mut := append([]byte(nil), raw...)
		mut[pos] ^= 0xFF
		if _, err := FromBytes(mut); !errors.Is(err, ErrChecksum) && err == nil {
			t.Errorf("flipping byte %d went undetected", pos)
		}
	}
}

func TestTruncationDetected(t *testing.T) {
	a := sampleArchive(t, 4)
	raw, _ := a.Bytes()
	for _, n := range []int{0, 3, 20, len(raw) / 2, len(raw) - 1} {
		if _, err := FromBytes(raw[:n]); err == nil {
			t.Errorf("truncation to %d bytes went undetected", n)
		}
	}
}

func TestTrailingGarbageDetected(t *testing.T) {
	a := sampleArchive(t, 5)
	raw, _ := a.Bytes()
	mut := append(append([]byte(nil), raw...), 0, 0, 0, 0)
	if _, err := FromBytes(mut); err == nil {
		t.Error("trailing garbage went undetected")
	}
}

func TestBadMagicAndVersion(t *testing.T) {
	a := sampleArchive(t, 6)
	raw, _ := a.Bytes()
	// A corrupted magic also breaks the CRC, so rewrite the CRC too. Easier:
	// hand-build a tiny buffer with a valid CRC but wrong magic.
	body := append([]byte(nil), raw[:len(raw)-4]...)
	body[0] ^= 1 // corrupt magic
	mut := appendCRC(body)
	if _, err := FromBytes(mut); err == nil || errors.Is(err, ErrChecksum) {
		t.Errorf("bad magic: got %v, want format error", err)
	}
	body = append([]byte(nil), raw[:len(raw)-4]...)
	body[4] ^= 0xFF // corrupt version
	mut = appendCRC(body)
	if _, err := FromBytes(mut); err == nil || errors.Is(err, ErrChecksum) {
		t.Errorf("bad version: got %v, want format error", err)
	}
}

func appendCRC(body []byte) []byte {
	var buf bytes.Buffer
	buf.Write(body)
	writeU32(&buf, crc32IEEE(body))
	return buf.Bytes()
}

func TestNilBandRejected(t *testing.T) {
	a := &Archive{Shape: []int{4}}
	if _, err := a.Bytes(); err == nil {
		t.Error("archive without band sections serialized without error")
	}
	b := &Archive{Shape: []int{4}, Bands: []*encode.EncodedBand{nil}}
	if _, err := b.Bytes(); err == nil {
		t.Error("nil band section serialized without error")
	}
}

func TestEmptySections(t *testing.T) {
	q, _ := quant.Quantize(nil, quant.Config{Method: quant.Simple, Divisions: 1})
	band, _ := encode.Encode(nil, q)
	a := &Archive{
		Params: Params{Scheme: wavelet.Haar, Method: quant.Simple, Levels: 1, Divisions: 1, SpikeDivisions: 64},
		Shape:  []int{1},
		Low:    []float64{3.14},
		Bands:  []*encode.EncodedBand{band},
	}
	raw, err := a.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	b, err := FromBytes(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !archivesEqual(a, b) {
		t.Error("empty-band round trip mismatch")
	}
}
