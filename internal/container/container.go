// Package container implements stage 4 of the compressor of Sasaki et al.
// (IPDPS 2015): the on-disk format of one lossy-compressed array (§III-D,
// Fig. 5). The formatted stream holds, in order:
//
//	header      — magic, version, pipeline parameters, array shape
//	low band    — the final low-frequency coefficients, raw doubles
//	averages    — the quantizer's representative-value table
//	codes       — one byte per quantized high-frequency value
//	bitmap      — which high-frequency values are codes vs. passthrough
//	passthrough — verbatim high-frequency doubles
//	trailer     — CRC-32 (IEEE) of everything above
//
// The paper then pipes this formatted output through gzip; that stage lives
// in package gzipio and is orchestrated by package core, so the container
// itself stays seekable and checksummable.
package container

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"lossyckpt/internal/bitpack"
	"lossyckpt/internal/encode"
	"lossyckpt/internal/grid"
	"lossyckpt/internal/quant"
	"lossyckpt/internal/wavelet"
)

// Errors returned by this package.
var (
	// ErrFormat indicates structurally malformed container data.
	ErrFormat = errors.New("container: malformed data")
	// ErrChecksum indicates the payload CRC does not match the trailer.
	ErrChecksum = errors.New("container: checksum mismatch")
)

const (
	magic   = 0x504B434C // "LCKP"
	version = 1
)

// PackedWidth is the byte width of one packed value in the serialized
// stream: every float section (low band, averages, passthrough) stores
// 8-byte little-endian float64 words. The entropy stage's byte-shuffle
// pre-pass uses this as its lane stride; exposing it here, next to
// writeFloats, keeps the two from drifting apart silently (a layout
// regression test pins both).
func PackedWidth() int { return 8 }

// Params records the pipeline configuration baked into an archive; the
// decompressor needs them to invert the transform.
type Params struct {
	Scheme         wavelet.Scheme
	Method         quant.Method
	Levels         int
	Divisions      int
	SpikeDivisions int
	// PerBand is true when each wavelet sub-band was quantized separately
	// (the per-band ablation); false for the paper's pooled quantization.
	PerBand bool
}

// Archive is the in-memory form of one compressed array: parameters, shape,
// the low band, and one or more encoded high-band sections. The paper's
// pooled quantization produces exactly one section; the per-band ablation
// produces one per wavelet sub-band (in wavelet.Plan.Bands() order,
// excluding the low band).
type Archive struct {
	Params Params
	Shape  []int
	Low    []float64
	Bands  []*encode.EncodedBand
}

// Band returns the single band section of a pooled archive; it panics when
// the archive is per-band. It exists for the common pooled case.
func (a *Archive) Band() *encode.EncodedBand {
	if len(a.Bands) != 1 {
		panic(fmt.Sprintf("container: Band() on archive with %d band sections", len(a.Bands)))
	}
	return a.Bands[0]
}

// WriteTo serializes the archive, implementing io.WriterTo. The stream ends
// with a CRC-32 of all preceding bytes.
func (a *Archive) WriteTo(w io.Writer) (int64, error) {
	buf, err := a.encode()
	if err != nil {
		return 0, err
	}
	n, err := w.Write(buf.Bytes())
	return int64(n), err
}

// encode builds the serialized stream in a buffer sized exactly once.
func (a *Archive) encode() (*bytes.Buffer, error) {
	if len(a.Bands) == 0 {
		return nil, fmt.Errorf("%w: no band sections", ErrFormat)
	}
	for _, b := range a.Bands {
		if b == nil {
			return nil, fmt.Errorf("%w: nil band section", ErrFormat)
		}
		if err := b.Validate(); err != nil {
			return nil, err
		}
	}
	var buf bytes.Buffer
	buf.Grow(a.SerializedSize())

	// Header.
	writeU32(&buf, magic)
	writeU16(&buf, version)
	writeU16(&buf, uint16(a.Params.Scheme))
	writeU16(&buf, uint16(a.Params.Method))
	writeU16(&buf, uint16(a.Params.Levels))
	writeU16(&buf, uint16(a.Params.Divisions))
	writeU16(&buf, uint16(a.Params.SpikeDivisions))
	var flags uint16
	if a.Params.PerBand {
		flags |= 1
	}
	writeU16(&buf, flags)
	writeU16(&buf, uint16(len(a.Shape)))
	for _, e := range a.Shape {
		writeU64(&buf, uint64(e))
	}

	// Sections, each length-prefixed.
	writeFloats(&buf, a.Low)
	writeU16(&buf, uint16(len(a.Bands)))
	for _, b := range a.Bands {
		writeFloats(&buf, b.Averages)
		writeBytes(&buf, b.Codes)
		writeU64(&buf, uint64(b.N))
		if _, err := b.Bitmap.WriteTo(&buf); err != nil {
			return nil, err
		}
		writeFloats(&buf, b.Passthrough)
	}

	// Trailer.
	crc := crc32.ChecksumIEEE(buf.Bytes())
	writeU32(&buf, crc)
	return &buf, nil
}

// Bytes serializes the archive to a fresh byte slice.
func (a *Archive) Bytes() ([]byte, error) {
	buf, err := a.encode()
	if err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// SerializedSize returns the exact number of bytes WriteTo produces.
func (a *Archive) SerializedSize() int {
	n := 4 + 2 + 2 + 2 + 2 + 2 + 2 + 2 + 2 + 8*len(a.Shape) // header (incl. flags)
	n += 8 + 8*len(a.Low)                                   // low band
	n += 2                                                  // band count
	for _, b := range a.Bands {
		n += 8 + 8*len(b.Averages)     // averages
		n += 8 + len(b.Codes)          // codes
		n += 8                         // band N
		n += b.Bitmap.SerializedSize() // bitmap
		n += 8 + 8*len(b.Passthrough)  // passthrough
	}
	n += 4 // crc
	return n
}

// ReadArchive deserializes an archive produced by WriteTo, verifying the
// trailing checksum.
func ReadArchive(r io.Reader) (*Archive, error) {
	// Buffer everything so the CRC can be validated. Containers are sized
	// like checkpoints (MBs), so this is acceptable.
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	return FromBytes(raw)
}

// FromBytes deserializes an archive from a byte slice, verifying the
// trailing checksum.
func FromBytes(raw []byte) (*Archive, error) {
	if len(raw) < 4+2+14+2+4 {
		return nil, fmt.Errorf("%w: too short (%d bytes)", ErrFormat, len(raw))
	}
	body, tail := raw[:len(raw)-4], raw[len(raw)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return nil, ErrChecksum
	}
	rd := &sliceReader{b: body}

	if rd.u32() != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrFormat)
	}
	if v := rd.u16(); v != version {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrFormat, v)
	}
	var a Archive
	a.Params.Scheme = wavelet.Scheme(rd.u16())
	a.Params.Method = quant.Method(rd.u16())
	a.Params.Levels = int(rd.u16())
	a.Params.Divisions = int(rd.u16())
	a.Params.SpikeDivisions = int(rd.u16())
	flags := rd.u16()
	a.Params.PerBand = flags&1 != 0
	nd := int(rd.u16())
	if rd.err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrFormat, rd.err)
	}
	if nd == 0 || nd > grid.MaxDims {
		return nil, fmt.Errorf("%w: ndims %d", ErrFormat, nd)
	}
	a.Shape = make([]int, nd)
	elems := uint64(1)
	for d := range a.Shape {
		e := rd.u64()
		if e == 0 || e > math.MaxInt32 {
			return nil, fmt.Errorf("%w: extent %d", ErrFormat, e)
		}
		a.Shape[d] = int(e)
		elems *= e
	}
	// Plausibility cap: every stored value costs at least a bitmap bit,
	// so a genuine archive holds at least elems/8 bytes (64× slack). A
	// forged header cannot make the decompressor allocate arrays vastly
	// larger than the input that claims to describe them.
	if elems/64 > uint64(len(raw)) {
		return nil, fmt.Errorf("%w: shape %v declares %d elements for %d input bytes", ErrFormat, a.Shape, elems, len(raw))
	}

	a.Low = rd.floats()
	numBands := int(rd.u16())
	if rd.err != nil {
		return nil, fmt.Errorf("%w: sections: %v", ErrFormat, rd.err)
	}
	if numBands < 1 || numBands > 1<<12 {
		return nil, fmt.Errorf("%w: band count %d", ErrFormat, numBands)
	}
	a.Bands = make([]*encode.EncodedBand, 0, numBands)
	for bi := 0; bi < numBands; bi++ {
		avgs := rd.floats()
		codes := rd.bytes()
		bandN := rd.u64()
		if rd.err != nil {
			return nil, fmt.Errorf("%w: band %d: %v", ErrFormat, bi, rd.err)
		}
		if bandN > uint64(len(body))*64 { // cheap sanity bound
			return nil, fmt.Errorf("%w: band %d value count %d implausible", ErrFormat, bi, bandN)
		}
		// The band's value count is already known, so cap the bitmap
		// allocation at exactly that many bits.
		bm, err := bitpack.ReadMax(rd, bandN)
		if err != nil {
			return nil, err
		}
		pass := rd.floats()
		if rd.err != nil {
			return nil, fmt.Errorf("%w: band %d passthrough: %v", ErrFormat, bi, rd.err)
		}
		band := &encode.EncodedBand{
			N:           int(bandN),
			Bitmap:      bm,
			Codes:       codes,
			Averages:    avgs,
			Passthrough: pass,
		}
		if err := band.Validate(); err != nil {
			return nil, err
		}
		a.Bands = append(a.Bands, band)
	}
	if rd.remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrFormat, rd.remaining())
	}
	return &a, nil
}

// --- little-endian helpers ----------------------------------------------

func writeU16(buf *bytes.Buffer, v uint16) {
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], v)
	buf.Write(b[:])
}

func writeU32(buf *bytes.Buffer, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	buf.Write(b[:])
}

func writeU64(buf *bytes.Buffer, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	buf.Write(b[:])
}

func writeFloats(buf *bytes.Buffer, fs []float64) {
	writeU64(buf, uint64(len(fs)))
	var b [8]byte
	for _, f := range fs {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(f))
		buf.Write(b[:])
	}
}

func writeBytes(buf *bytes.Buffer, bs []byte) {
	writeU64(buf, uint64(len(bs)))
	buf.Write(bs)
}

// sliceReader is a cursor over a byte slice that records the first error
// and also satisfies io.Reader for bitpack.Read.
type sliceReader struct {
	b   []byte
	off int
	err error
}

func (r *sliceReader) remaining() int { return len(r.b) - r.off }

func (r *sliceReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.remaining() < n {
		r.err = io.ErrUnexpectedEOF
		return nil
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out
}

func (r *sliceReader) Read(p []byte) (int, error) {
	if r.err != nil {
		return 0, r.err
	}
	n := copy(p, r.b[r.off:])
	r.off += n
	if n == 0 && len(p) > 0 {
		return 0, io.EOF
	}
	return n, nil
}

func (r *sliceReader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (r *sliceReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *sliceReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *sliceReader) floats() []float64 {
	n := r.u64()
	if r.err != nil {
		return nil
	}
	if n > uint64(r.remaining()/8) {
		r.err = io.ErrUnexpectedEOF
		return nil
	}
	b := r.take(int(n) * 8)
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

func (r *sliceReader) bytes() []byte {
	n := r.u64()
	if r.err != nil {
		return nil
	}
	if n > uint64(r.remaining()) {
		r.err = io.ErrUnexpectedEOF
		return nil
	}
	return append([]byte(nil), r.take(int(n))...)
}
