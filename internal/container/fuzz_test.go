package container

import "testing"

// FuzzFromBytes hardens the archive parser: arbitrary input must either
// produce a valid archive or an error — never panic, never hang.
func FuzzFromBytes(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x4C, 0x43, 0x4B, 0x50})
	a := multiBandArchiveForFuzz()
	if raw, err := a.Bytes(); err == nil {
		f.Add(raw)
		// A few systematic corruptions as seeds.
		for _, pos := range []int{0, 8, len(raw) / 2, len(raw) - 2} {
			mut := append([]byte(nil), raw...)
			mut[pos] ^= 0xFF
			f.Add(mut)
		}
		f.Add(raw[:len(raw)/2])
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		arch, err := FromBytes(data)
		if err == nil && arch == nil {
			t.Fatal("nil archive without error")
		}
		if err == nil {
			// A successfully parsed archive must re-serialize.
			if _, rerr := arch.Bytes(); rerr != nil {
				t.Fatalf("parsed archive does not re-serialize: %v", rerr)
			}
		}
	})
}

func multiBandArchiveForFuzz() *Archive {
	// Reuse the test helper via a tiny shim (fuzz functions cannot take
	// *testing.T helpers directly).
	t := &testing.T{}
	return multiBandArchive(t, 99, 2)
}
