package container

import (
	"math/rand"
	"testing"

	"lossyckpt/internal/encode"
	"lossyckpt/internal/quant"
	"lossyckpt/internal/wavelet"
)

// multiBandArchive builds a per-band archive with several band sections of
// different sizes.
func multiBandArchive(t *testing.T, seed int64, nBands int) *Archive {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	bands := make([]*encode.EncodedBand, 0, nBands)
	for bi := 0; bi < nBands; bi++ {
		n := 100 + rng.Intn(900)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.NormFloat64() * float64(bi+1)
		}
		q, err := quant.Quantize(vals, quant.Config{Method: quant.Proposed, Divisions: 8 + bi})
		if err != nil {
			t.Fatal(err)
		}
		band, err := encode.Encode(vals, q)
		if err != nil {
			t.Fatal(err)
		}
		bands = append(bands, band)
	}
	return &Archive{
		Params: Params{
			Scheme:         wavelet.Haar,
			Method:         quant.Proposed,
			Levels:         2,
			Divisions:      32,
			SpikeDivisions: 64,
			PerBand:        true,
		},
		Shape: []int{64, 32},
		Low:   []float64{1, 2, 3},
		Bands: bands,
	}
}

func TestPerBandRoundTrip(t *testing.T) {
	for _, nBands := range []int{1, 3, 7} {
		a := multiBandArchive(t, int64(nBands), nBands)
		raw, err := a.Bytes()
		if err != nil {
			t.Fatalf("%d bands: %v", nBands, err)
		}
		if len(raw) != a.SerializedSize() {
			t.Errorf("%d bands: SerializedSize %d, actual %d", nBands, a.SerializedSize(), len(raw))
		}
		b, err := FromBytes(raw)
		if err != nil {
			t.Fatalf("%d bands: %v", nBands, err)
		}
		if !b.Params.PerBand {
			t.Error("PerBand flag lost")
		}
		if !archivesEqual(a, b) {
			t.Errorf("%d bands: round trip mismatch", nBands)
		}
	}
}

func TestBandAccessorPanicsOnMultiBand(t *testing.T) {
	a := multiBandArchive(t, 1, 3)
	defer func() {
		if recover() == nil {
			t.Error("Band() on multi-band archive did not panic")
		}
	}()
	_ = a.Band()
}

func TestBandAccessorPooled(t *testing.T) {
	a := multiBandArchive(t, 2, 1)
	if a.Band() != a.Bands[0] {
		t.Error("Band() did not return the single section")
	}
}

func TestPerBandCorruptionDetected(t *testing.T) {
	a := multiBandArchive(t, 3, 5)
	raw, _ := a.Bytes()
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 16; trial++ {
		mut := append([]byte(nil), raw...)
		mut[rng.Intn(len(mut))] ^= byte(1 + rng.Intn(255))
		if _, err := FromBytes(mut); err == nil {
			t.Fatal("corrupted multi-band archive accepted")
		}
	}
	for _, cut := range []int{len(raw) / 4, len(raw) / 2, len(raw) - 5} {
		if _, err := FromBytes(raw[:cut]); err == nil {
			t.Fatalf("truncation to %d accepted", cut)
		}
	}
}
