package container

import (
	"encoding/binary"
	"math"
	"testing"

	"lossyckpt/internal/bitpack"
	"lossyckpt/internal/encode"
	"lossyckpt/internal/quant"
	"lossyckpt/internal/wavelet"
)

// TestPackedWidthPinsFloatLayout is the regression test for the
// PackedWidth accessor: the entropy stage's byte-shuffle pre-pass
// assumes the serialized float sections are runs of PackedWidth()-byte
// little-endian float64 words. This test serializes an archive with
// recognizable low-band values and asserts, byte for byte, that the low
// band sits at the computed offset as 8-byte LE words — so any change
// to the packing width or endianness fails here before it silently
// breaks the shuffle transform.
func TestPackedWidthPinsFloatLayout(t *testing.T) {
	if PackedWidth() != 8 {
		t.Fatalf("PackedWidth() = %d, want 8 (float64 LE words)", PackedWidth())
	}

	low := []float64{1.5, -2.25, math.Pi, 0, 1e300}
	bm := bitpack.New(2)
	bm.Set(0, true)
	a := &Archive{
		Params: Params{Scheme: wavelet.Haar, Method: quant.Proposed, Levels: 1, Divisions: 4},
		Shape:  []int{2, 4},
		Low:    low,
		Bands: []*encode.EncodedBand{{
			N:           2,
			Bitmap:      bm,
			Codes:       []uint8{0},
			Averages:    []float64{3.5},
			Passthrough: []float64{7.75},
		}},
	}
	raw, err := a.Bytes()
	if err != nil {
		t.Fatal(err)
	}

	// Header: u32 magic + 8 u16 fields + one u64 extent per dimension.
	headerLen := 4 + 8*2 + 8*len(a.Shape)
	// Low-band section: u64 count, then count packed words.
	off := headerLen
	if got := binary.LittleEndian.Uint64(raw[off:]); got != uint64(len(low)) {
		t.Fatalf("low-band count at offset %d = %d, want %d", off, got, len(low))
	}
	off += 8
	w := PackedWidth()
	for i, f := range low {
		got := binary.LittleEndian.Uint64(raw[off+i*w:])
		if got != math.Float64bits(f) {
			t.Fatalf("low[%d] at offset %d = %#x, want %#x (8-byte LE float64)",
				i, off+i*w, got, math.Float64bits(f))
		}
	}

	// The accessor must agree with SerializedSize's accounting: each float
	// costs exactly PackedWidth() bytes.
	sizeWith := a.SerializedSize()
	a.Low = append(a.Low, 42)
	if diff := a.SerializedSize() - sizeWith; diff != w {
		t.Fatalf("one extra low float costs %d bytes, want PackedWidth()=%d", diff, w)
	}
}
