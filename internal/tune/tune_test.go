package tune

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"lossyckpt/internal/core"
	"lossyckpt/internal/entropy"
	"lossyckpt/internal/grid"
	"lossyckpt/internal/obs"
)

// floatSample packs a smooth float64 signal, the shape checkpoint
// variables have.
func floatSample(n int) []byte {
	out := make([]byte, 0, 8*n)
	for i := 0; i < n; i++ {
		u := math.Float64bits(300 + 20*math.Sin(float64(i)/150))
		for k := 0; k < 8; k++ {
			out = append(out, byte(u>>(8*k)))
		}
	}
	return out
}

func TestDecideCachesPerVariable(t *testing.T) {
	tn := New(Config{Observer: obs.NewRegistry()})
	sample := floatSample(8192)
	first := tn.Decide("temp", len(sample), sample)
	for i := 0; i < 5; i++ {
		if got := tn.Decide("temp", len(sample), sample); got != first {
			t.Fatalf("cached decision changed on use %d: %v -> %v", i, first, got)
		}
	}
	if _, ok := tn.Cached("temp"); !ok {
		t.Fatal("no cached decision after Decide")
	}
	if _, ok := tn.Cached("pressure"); ok {
		t.Fatal("unrelated variable has a cached decision")
	}
}

func TestThroughputObjectivePicksLZ4(t *testing.T) {
	// Compressible data where gzip wins on ratio but LZ4 wins on speed.
	reg := obs.NewRegistry()
	tn := New(Config{Objective: Throughput, Observer: reg})
	sample := bytes.Repeat(floatSample(4096), 4)
	s := tn.Decide("v", 64<<20, sample)
	if s.Codec != entropy.LZ4 {
		t.Fatalf("throughput objective picked %s, want lz4", s.Label())
	}
}

func TestRatioObjectivePicksGzip(t *testing.T) {
	tn := New(Config{Objective: Ratio, Observer: obs.NewRegistry()})
	sample := floatSample(32768)
	s := tn.Decide("v", len(sample), sample)
	if s.Codec != entropy.Gzip {
		t.Fatalf("ratio objective picked %s, want gzip", s.Label())
	}
}

func TestReProbeAfterUses(t *testing.T) {
	reg := obs.NewRegistry()
	tn := New(Config{ReProbeEvery: 3, Observer: reg})
	sample := floatSample(4096)
	for i := 0; i < 7; i++ {
		tn.Decide("v", len(sample), sample)
	}
	var refresh float64
	for _, m := range reg.Snapshot().Metrics {
		if m.Name == MetricReProbes && m.Labels["reason"] == "refresh" {
			refresh = m.Value
		}
	}
	if refresh < 2 {
		t.Fatalf("expected at least 2 refresh re-probes over 7 uses with ReProbeEvery=3, got %v", refresh)
	}
}

func TestObserveDriftInvalidates(t *testing.T) {
	reg := obs.NewRegistry()
	tn := New(Config{Observer: reg})
	sample := floatSample(8192)
	tn.Decide("v", len(sample), sample)
	if _, ok := tn.Cached("v"); !ok {
		t.Fatal("no cached decision")
	}
	// Report a wildly slower encode than the probe predicted.
	tn.Observe("v", len(sample), 3600)
	if _, ok := tn.Cached("v"); ok {
		t.Fatal("drifted decision still cached")
	}
	var drift float64
	for _, m := range reg.Snapshot().Metrics {
		if m.Name == MetricReProbes && m.Labels["reason"] == "drift" {
			drift = m.Value
		}
	}
	if drift != 1 {
		t.Fatalf("drift counter = %v, want 1", drift)
	}
}

func TestProbeAndDecisionCounters(t *testing.T) {
	reg := obs.NewRegistry()
	tn := New(Config{Observer: reg})
	sample := floatSample(4096)
	tn.Decide("v", len(sample), sample)
	probes, decisions := 0.0, 0.0
	for _, m := range reg.Snapshot().Metrics {
		switch m.Name {
		case MetricProbes:
			probes += m.Value
		case MetricDecisions:
			decisions += m.Value
		}
	}
	if probes != 4 {
		t.Fatalf("probe counter = %v, want 4 (one per candidate)", probes)
	}
	if decisions != 1 {
		t.Fatalf("decision counter = %v, want 1", decisions)
	}
}

func TestSettingApplyRoundTrips(t *testing.T) {
	// A tuner-applied setting must produce a stream core can decompress,
	// identical to the untuned reconstruction.
	f := grid.MustNew(64, 32)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 64; i++ {
		for j := 0; j < 32; j++ {
			f.Set(100+10*math.Sin(float64(i)/9)+0.01*rng.NormFloat64(), i, j)
		}
	}
	tn := New(Config{Observer: obs.NewRegistry()})
	raw := floatSample(2048)
	s := tn.Decide("x", f.Bytes(), raw)
	opts := s.Apply(core.DefaultOptions())
	opts.VarName = "x"
	res, err := core.Compress(f, opts)
	if err != nil {
		t.Fatal(err)
	}
	g, err := core.DecompressAnyParallel(res.Data, 2)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := core.Compress(f, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.Decompress(ref.Data)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range want.Data() {
		if g.Data()[i] != v {
			t.Fatalf("tuned reconstruction differs from default at %d", i)
		}
	}
}

func TestEmptySampleFallsBack(t *testing.T) {
	tn := New(Config{Observer: obs.NewRegistry()})
	s := tn.Decide("v", 0, nil)
	if s.Codec != entropy.Gzip || s.Shuffle {
		t.Fatalf("empty sample decision = %v, want plain gzip default", s)
	}
}
