// Package tune closes the loop the paper leaves open: §IV-C proposes
// controlling the pipeline "by specifying a value" instead of hand-tuned
// parameters, and the error-bounded-compression literature (PAPERS.md —
// Tao et al.'s Fixed-PSNR analytic rate control, Di et al.'s survey of
// adaptive codec selection) shows production compressors pick their
// entropy configuration online. The Tuner does that for the entropy
// stage: given a sample of a variable's bytes it probes each candidate
// (codec × shuffle) configuration, scores the measurements under a
// stated objective, caches the winner per variable, and keeps listening
// to observed stage timings so a drifting workload triggers a re-probe.
// The guard ladder (PR 4) stays the enforcement backstop — the tuner
// only ever changes lossless entropy framing, never quality.
package tune

import (
	"runtime"
	"strconv"
	"sync"
	"time"

	"lossyckpt/internal/core"
	"lossyckpt/internal/entropy"
	"lossyckpt/internal/gzipio"
	"lossyckpt/internal/obs"
	"lossyckpt/internal/obs/journal"
)

// Metric names recorded by the tuner.
const (
	// MetricProbes counts probe compressions, labeled codec=<label>.
	MetricProbes = "lossyckpt_tune_probes_total"
	// MetricDecisions counts cache-miss decisions, labeled codec=<label>.
	MetricDecisions = "lossyckpt_tune_decisions_total"
	// MetricReProbes counts cache invalidations from drift feedback or
	// the periodic refresh, labeled reason=drift|refresh.
	MetricReProbes = "lossyckpt_tune_reprobes_total"
)

// Objective states what the tuner optimizes.
type Objective int

const (
	// Balanced minimizes estimated end-to-end checkpoint cost: coding
	// time plus compressed bytes over the assumed storage bandwidth. This
	// is the paper's actual trade-off — compression only pays when
	// (compress + write-compressed) beats (write-raw).
	Balanced Objective = iota
	// Throughput minimizes entropy-stage coding time alone.
	Throughput
	// Ratio minimizes compressed size alone.
	Ratio
)

// String implements fmt.Stringer.
func (o Objective) String() string {
	switch o {
	case Throughput:
		return "throughput"
	case Ratio:
		return "ratio"
	default:
		return "balanced"
	}
}

// ParseObjective maps a CLI name to an Objective; unknown names return
// Balanced.
func ParseObjective(name string) Objective {
	switch name {
	case "throughput":
		return Throughput
	case "ratio":
		return Ratio
	default:
		return Balanced
	}
}

// Setting is one entropy-stage configuration the tuner can select.
type Setting struct {
	Codec     entropy.ID
	Shuffle   bool
	GzipBlock int
	Workers   int
}

// Label is the codec label ("lz4+shuffle", …) for metrics and reports.
func (s Setting) Label() string {
	return entropy.Params{Codec: s.Codec, Shuffle: s.Shuffle}.Label()
}

// Apply overlays the setting on compressor options, leaving the lossy
// stages untouched — the tuner only ever steers lossless entropy
// framing.
func (s Setting) Apply(o core.Options) core.Options {
	o.EntropyCodec = s.Codec
	o.Shuffle = s.Shuffle
	o.GzipBlock = s.GzipBlock
	if s.Workers > 0 {
		o.Workers = s.Workers
	}
	return o
}

// Config parameterizes a Tuner. The zero value is usable.
type Config struct {
	// Objective is the optimization target (default Balanced).
	Objective Objective
	// ProbeBytes bounds the probe sample (default 256 KiB): larger
	// samples measure better but cost more per cache miss.
	ProbeBytes int
	// ReProbeEvery re-runs the probe after this many cached uses of a
	// variable's decision (default 16), so long runs track drift even
	// without timing feedback.
	ReProbeEvery int
	// DiskBytesPerSec is the assumed checkpoint-storage bandwidth the
	// Balanced objective charges compressed bytes against (default
	// 200 MB/s, a parallel-filesystem-per-node figure in the range the
	// paper's §IV-D I/O discussion implies).
	DiskBytesPerSec float64
	// GzipLevel is the DEFLATE level probed for gzip candidates (default
	// gzipio.Default).
	GzipLevel int
	// Observer receives probe/decision counters; nil uses the process
	// default registry.
	Observer *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.ProbeBytes <= 0 {
		c.ProbeBytes = 256 << 10
	}
	if c.ReProbeEvery <= 0 {
		c.ReProbeEvery = 16
	}
	if c.DiskBytesPerSec <= 0 {
		c.DiskBytesPerSec = 200 << 20
	}
	if c.GzipLevel == 0 {
		c.GzipLevel = gzipio.Default
	}
	if c.Observer == nil {
		c.Observer = obs.Default()
	}
	return c
}

// decision is one cached per-variable choice plus the probe's
// expectation, against which Observe checks reality.
type decision struct {
	setting Setting
	// probeBytesPerSec is the coding throughput the probe measured for
	// the winning candidate.
	probeBytesPerSec float64
	uses             int
}

// Tuner picks entropy-stage settings per variable. Safe for concurrent
// use; the ckpt manager encodes variables in parallel.
type Tuner struct {
	cfg Config

	mu    sync.Mutex
	byVar map[string]*decision
}

// New builds a Tuner.
func New(cfg Config) *Tuner {
	return &Tuner{cfg: cfg.withDefaults(), byVar: make(map[string]*decision)}
}

// candidate is one probed configuration.
type candidate struct {
	setting Setting
	seconds float64
	ratio   float64 // compressed/raw on the sample
}

// Decide returns the entropy setting for one variable. sample should be
// a representative slice of the variable's bytes (the raw float64
// stream works; the probe is an estimate that the Observe feedback
// corrects). rawBytes is the full variable size, used to scale the cost
// model and to size the parallel-gzip block heuristic. Cached decisions
// are returned until ReProbeEvery uses or a drift report invalidates
// them.
func (t *Tuner) Decide(varName string, rawBytes int, sample []byte) Setting {
	t.mu.Lock()
	if d, ok := t.byVar[varName]; ok {
		d.uses++
		if d.uses < t.cfg.ReProbeEvery {
			s := d.setting
			t.mu.Unlock()
			return s
		}
		delete(t.byVar, varName)
		t.mu.Unlock()
		t.cfg.Observer.Counter(MetricReProbes, "reason", "refresh").Inc()
	} else {
		t.mu.Unlock()
	}

	d := t.probe(varName, rawBytes, sample)

	t.mu.Lock()
	t.byVar[varName] = d
	t.mu.Unlock()
	return d.setting
}

// probe measures every candidate on the sample and scores them under
// the objective.
func (t *Tuner) probe(varName string, rawBytes int, sample []byte) *decision {
	if len(sample) == 0 {
		// Nothing to measure: stay on the repository default.
		return &decision{setting: Setting{Codec: entropy.Gzip}}
	}
	if len(sample) > t.cfg.ProbeBytes {
		sample = sample[:t.cfg.ProbeBytes]
	}
	cands := []Setting{
		{Codec: entropy.Gzip},
		{Codec: entropy.Gzip, Shuffle: true},
		{Codec: entropy.LZ4},
		{Codec: entropy.LZ4, Shuffle: true},
	}
	probed := make([]candidate, 0, len(cands))
	for _, s := range cands {
		p := entropy.Params{
			Codec:     s.Codec,
			Shuffle:   s.Shuffle,
			GzipLevel: t.cfg.GzipLevel,
			Observer:  t.cfg.Observer,
		}
		start := time.Now()
		res, err := entropy.Compress(sample, p)
		if err != nil {
			continue // a failing candidate is simply not selectable
		}
		secs := time.Since(start).Seconds()
		t.cfg.Observer.Counter(MetricProbes, "codec", s.Label()).Inc()
		ratio := 1.0
		if len(sample) > 0 {
			ratio = float64(len(res.Compressed)) / float64(len(sample))
		}
		probed = append(probed, candidate{setting: s, seconds: secs, ratio: ratio})
	}
	if len(probed) == 0 {
		// Nothing measurable (empty sample or all candidates failed):
		// fall back to the repository default.
		return &decision{setting: Setting{Codec: entropy.Gzip}}
	}

	best, bestCost := probed[0], t.cost(probed[0], rawBytes, len(sample))
	for _, c := range probed[1:] {
		if cost := t.cost(c, rawBytes, len(sample)); cost < bestCost {
			best, bestCost = c, cost
		}
	}

	sel := best.setting
	// Parallelism heuristic: only the gzip codec has a block-parallel
	// engine; shard large variables when cores are available.
	if sel.Codec == entropy.Gzip && runtime.GOMAXPROCS(0) > 1 && rawBytes >= 2*gzipio.DefaultBlockSize {
		sel.GzipBlock = gzipio.DefaultBlockSize
	}
	t.cfg.Observer.Counter(MetricDecisions, "codec", sel.Label()).Inc()
	journal.Default().Note("tune.decision", "var", varName,
		"codec", sel.Codec.String(), "shuffle", strconv.FormatBool(sel.Shuffle))

	bps := 0.0
	if best.seconds > 0 {
		bps = float64(maxInt(len(sample), 1)) / best.seconds
	}
	return &decision{setting: sel, probeBytesPerSec: bps}
}

// cost scores one candidate for the full variable under the objective.
// Lower is better.
func (t *Tuner) cost(c candidate, rawBytes, sampleBytes int) float64 {
	if sampleBytes <= 0 {
		sampleBytes = 1
	}
	scale := float64(rawBytes) / float64(sampleBytes)
	if scale < 1 {
		scale = 1
	}
	codeSecs := c.seconds * scale
	writeSecs := c.ratio * float64(rawBytes) / t.cfg.DiskBytesPerSec
	switch t.cfg.Objective {
	case Throughput:
		return codeSecs
	case Ratio:
		return c.ratio
	default:
		return codeSecs + writeSecs
	}
}

// Observe feeds one real encode back into the tuner: varName's entropy
// stage coded rawBytes in codeSeconds. When the observed throughput
// deviates from the probe's expectation by 2× in either direction the
// cached decision is dropped, forcing a fresh probe on the next Decide —
// the online part of the autotuner.
func (t *Tuner) Observe(varName string, rawBytes int, codeSeconds float64) {
	if codeSeconds <= 0 || rawBytes <= 0 {
		return
	}
	t.mu.Lock()
	d, ok := t.byVar[varName]
	if !ok || d.probeBytesPerSec <= 0 {
		t.mu.Unlock()
		return
	}
	observed := float64(rawBytes) / codeSeconds
	drifted := observed > 2*d.probeBytesPerSec || observed < d.probeBytesPerSec/2
	if drifted {
		delete(t.byVar, varName)
	}
	t.mu.Unlock()
	if drifted {
		t.cfg.Observer.Counter(MetricReProbes, "reason", "drift").Inc()
	}
}

// Cached returns the currently cached setting for a variable, if any —
// reporting/test surface.
func (t *Tuner) Cached(varName string) (Setting, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	d, ok := t.byVar[varName]
	if !ok {
		return Setting{}, false
	}
	return d.setting, true
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
