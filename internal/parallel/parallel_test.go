package parallel

import (
	"testing"

	"lossyckpt/internal/ckpt"
	"lossyckpt/internal/iomodel"
)

// small returns a fast test configuration.
func small(ranks int, codec ckpt.Codec) Config {
	c := DefaultConfig(ranks, codec)
	c.ElemsPerRank = 8192
	return c
}

func TestValidation(t *testing.T) {
	bad := []Config{
		{Ranks: 0, ElemsPerRank: 10, Codec: ckpt.None{}, FS: iomodel.PaperFS},
		{Ranks: 2, ElemsPerRank: 1, Codec: ckpt.None{}, FS: iomodel.PaperFS},
		{Ranks: 2, ElemsPerRank: 10, Codec: nil, FS: iomodel.PaperFS},
		{Ranks: 2, ElemsPerRank: 10, Codec: ckpt.None{}},
	}
	for i, c := range bad {
		if _, err := Run(c); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestRunLossyCluster(t *testing.T) {
	cfg := small(8, ckpt.NewLossy())
	out, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.PerRank) != 8 {
		t.Fatalf("per-rank results: %d", len(out.PerRank))
	}
	if out.CompressionRatePct() >= 100 {
		t.Errorf("cluster cr %.1f%%", out.CompressionRatePct())
	}
	if out.CompressMakespan <= 0 {
		t.Error("zero compression makespan")
	}
	if out.IOTime >= out.IOTimeRaw {
		t.Error("compressed I/O not smaller than raw I/O")
	}
	for r, rr := range out.PerRank {
		if rr.Rank != r || rr.CompressedBytes == 0 || rr.RawBytes != 8192*8 {
			t.Errorf("rank %d result malformed: %+v", r, rr)
		}
	}
	if out.TotalWith() != out.CompressMakespan+out.IOTime {
		t.Error("TotalWith inconsistent")
	}
	if out.TotalWithout() != out.IOTimeRaw {
		t.Error("TotalWithout inconsistent")
	}
}

func TestRanksGetDistinctData(t *testing.T) {
	cfg := small(4, ckpt.None{})
	a, b := rankField(cfg, 0), rankField(cfg, 1)
	if a.Equal(b) {
		t.Error("ranks 0 and 1 share identical data")
	}
	// Deterministic per rank.
	if !a.Equal(rankField(cfg, 0)) {
		t.Error("rank data not deterministic")
	}
}

func TestReplayRankLossless(t *testing.T) {
	cfg := small(4, ckpt.None{})
	out, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := ReplayRank(cfg, out, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.MaxPct != 0 {
		t.Errorf("lossless replay has error %v", s)
	}
	if _, err := ReplayRank(cfg, out, 99); err == nil {
		t.Error("out-of-range rank accepted")
	}
}

func TestReplayRankLossySmallError(t *testing.T) {
	cfg := small(4, ckpt.NewLossy())
	out, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4; r++ {
		s, err := ReplayRank(cfg, out, r)
		if err != nil {
			t.Fatal(err)
		}
		if s.AvgPct > 1 {
			t.Errorf("rank %d avg error %.4f%%", r, s.AvgPct)
		}
	}
}

func TestWorkerBoundRespectedAndResultsStable(t *testing.T) {
	// The compressed payloads must not depend on worker count.
	run := func(workers int) *Outcome {
		cfg := small(6, ckpt.NewLossy())
		cfg.Workers = workers
		out, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(1), run(4)
	for r := range a.PerRank {
		if a.PerRank[r].CompressedBytes != b.PerRank[r].CompressedBytes {
			t.Errorf("rank %d payload size depends on workers", r)
		}
	}
}

func TestWeakScalingIOGrowsCompressionBounded(t *testing.T) {
	// Weak scaling: raw I/O grows linearly with ranks while the measured
	// compression makespan stays bounded by the worker pool — the paper's
	// central Fig. 9 argument, here executed rather than modeled.
	out4, err := Run(small(4, ckpt.NewGzip()))
	if err != nil {
		t.Fatal(err)
	}
	out16, err := Run(small(16, ckpt.NewGzip()))
	if err != nil {
		t.Fatal(err)
	}
	if out16.IOTimeRaw <= out4.IOTimeRaw {
		t.Error("raw I/O did not grow with rank count")
	}
	ratio := float64(out16.IOTimeRaw) / float64(out4.IOTimeRaw)
	if ratio < 3.9 || ratio > 4.1 {
		t.Errorf("raw I/O scaling ratio %.2f, want ≈4", ratio)
	}
}
