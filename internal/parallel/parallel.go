// Package parallel executes the scenario the paper's Fig. 9 only models
// analytically: P application ranks, each holding a ~1.5 MB checkpoint
// array, compress their checkpoints concurrently ("in an embarrassingly
// parallel fashion", §IV-D) and then write the compressed data to a shared
// parallel filesystem.
//
// The compression really runs — every rank's array is compressed on a
// bounded worker pool, so CPU contention between ranks is measured, not
// assumed — while the filesystem remains the same bandwidth model as
// package iomodel (real multi-node I/O hardware being out of scope; see
// DESIGN.md §2). The result is a cross-check of the analytic estimator:
// the makespans it reports follow the same crossover behaviour, including
// the compression-cost plateau the paper's flat per-process term predicts.
//
// The package also verifies restartability: ReplayRank decodes any rank's
// checkpoint payload and reports its error against the live data.
package parallel

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"lossyckpt/internal/ckpt"
	"lossyckpt/internal/grid"
	"lossyckpt/internal/iomodel"
	"lossyckpt/internal/stats"
)

// ErrConfig indicates an invalid cluster configuration.
var ErrConfig = errors.New("parallel: invalid configuration")

// Config describes the simulated cluster checkpoint.
type Config struct {
	// Ranks is the number of application processes P.
	Ranks int
	// ElemsPerRank is the per-rank checkpoint array length (the paper's
	// 1.5 MB ≈ 190k doubles).
	ElemsPerRank int
	// Codec compresses each rank's array. Must be safe for concurrent use.
	Codec ckpt.Codec
	// FS models the shared parallel filesystem.
	FS iomodel.FileSystem
	// Workers bounds the concurrently running compressions (0 =
	// GOMAXPROCS), modeling the per-node core budget.
	Workers int
	// Seed drives the synthetic rank data (each rank gets a distinct
	// smooth field derived from Seed and its rank id).
	Seed int64
}

// DefaultConfig mirrors the paper's weak-scaling unit: 1.5 MB per rank.
func DefaultConfig(ranks int, codec ckpt.Codec) Config {
	return Config{
		Ranks:        ranks,
		ElemsPerRank: 189584, // 1156*82*2, the paper's array length
		Codec:        codec,
		FS:           iomodel.PaperFS,
		Seed:         2015,
	}
}

func (c Config) validate() error {
	if c.Ranks < 1 {
		return fmt.Errorf("%w: ranks %d", ErrConfig, c.Ranks)
	}
	if c.ElemsPerRank < 2 {
		return fmt.Errorf("%w: %d elements per rank", ErrConfig, c.ElemsPerRank)
	}
	if c.Codec == nil {
		return fmt.Errorf("%w: nil codec", ErrConfig)
	}
	if c.FS.BandwidthBytesPerSec <= 0 {
		return fmt.Errorf("%w: filesystem bandwidth %g", ErrConfig, c.FS.BandwidthBytesPerSec)
	}
	return nil
}

// RankResult is one rank's checkpoint outcome.
type RankResult struct {
	Rank            int
	RawBytes        int
	CompressedBytes int
	// CompressWall is the measured wall-clock compression time of this
	// rank (queueing on the worker pool excluded).
	CompressWall time.Duration
	// Payload is the compressed checkpoint (kept for restart replay).
	Payload []byte
}

// Outcome aggregates a cluster checkpoint.
type Outcome struct {
	PerRank []RankResult
	// CompressMakespan is the measured wall-clock time from the first
	// compression starting to the last finishing (includes pool queueing —
	// the quantity that grows once ranks outnumber cores).
	CompressMakespan time.Duration
	// IOTime is the modeled shared-filesystem write of all compressed
	// payloads.
	IOTime time.Duration
	// IOTimeRaw is the modeled write of the uncompressed data (the
	// no-compression baseline).
	IOTimeRaw time.Duration
	// RawBytes and CompressedBytes sum over ranks.
	RawBytes        int
	CompressedBytes int
}

// TotalWith returns makespan + modeled compressed I/O.
func (o *Outcome) TotalWith() time.Duration { return o.CompressMakespan + o.IOTime }

// TotalWithout returns the no-compression baseline (raw I/O only).
func (o *Outcome) TotalWithout() time.Duration { return o.IOTimeRaw }

// CompressionRatePct returns the aggregate cr (Eq. 5) in percent.
func (o *Outcome) CompressionRatePct() float64 {
	if o.RawBytes == 0 {
		return math.NaN()
	}
	return 100 * float64(o.CompressedBytes) / float64(o.RawBytes)
}

// rankField builds rank r's synthetic smooth array: a shared large-scale
// pattern plus rank-dependent phase, the weak-scaling analogue of every
// process holding its own subdomain of one global field.
func rankField(cfg Config, r int) *grid.Field {
	f := grid.MustNew(cfg.ElemsPerRank)
	rng := rand.New(rand.NewSource(cfg.Seed + int64(r)))
	phase := 2 * math.Pi * float64(r) / float64(cfg.Ranks)
	data := f.Data()
	n := float64(len(data))
	for i := range data {
		x := float64(i) / n
		data[i] = 1000 +
			80*math.Sin(2*math.Pi*x+phase) +
			15*math.Cos(14*math.Pi*x-phase) +
			0.02*rng.NormFloat64()
	}
	return f
}

// Run executes the cluster checkpoint: builds every rank's data, compresses
// all ranks on the worker pool, and combines the measured compression
// makespan with the modeled filesystem write.
func Run(cfg Config) (*Outcome, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	fields := make([]*grid.Field, cfg.Ranks)
	for r := range fields {
		fields[r] = rankField(cfg, r)
	}

	out := &Outcome{PerRank: make([]RankResult, cfg.Ranks)}
	errs := make([]error, cfg.Ranks)
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	start := time.Now()
	for r := 0; r < cfg.Ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			t0 := time.Now()
			enc, err := cfg.Codec.Encode(fields[r])
			if err != nil {
				errs[r] = err
				return
			}
			out.PerRank[r] = RankResult{
				Rank:            r,
				RawBytes:        enc.RawBytes,
				CompressedBytes: len(enc.Payload),
				CompressWall:    time.Since(t0),
				Payload:         enc.Payload,
			}
		}(r)
	}
	wg.Wait()
	out.CompressMakespan = time.Since(start)
	for r, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("parallel: rank %d: %w", r, err)
		}
	}
	for _, rr := range out.PerRank {
		out.RawBytes += rr.RawBytes
		out.CompressedBytes += rr.CompressedBytes
	}
	out.IOTime = cfg.FS.WriteTime(int64(out.CompressedBytes))
	out.IOTimeRaw = cfg.FS.WriteTime(int64(out.RawBytes))
	return out, nil
}

// ReplayRank decodes rank r's payload — the restart path — and returns the
// relative-error summary against the rank's live data (zero for lossless
// codecs).
func ReplayRank(cfg Config, o *Outcome, r int) (stats.Summary, error) {
	if r < 0 || r >= len(o.PerRank) {
		return stats.Summary{}, fmt.Errorf("%w: rank %d of %d", ErrConfig, r, len(o.PerRank))
	}
	live := rankField(cfg, r)
	decoded, err := cfg.Codec.Decode(o.PerRank[r].Payload, live.Shape())
	if err != nil {
		return stats.Summary{}, err
	}
	return stats.Compare(live.Data(), decoded.Data())
}
