// Package incr implements incremental checkpointing — storing only the
// difference against the previous checkpoint — the alternative
// size-reduction technique the reproduced paper's introduction dismisses
// for mesh-based scientific applications: "the effectiveness of these
// approaches are limited in real applications … since the majority of the
// memory footprint is frequently updated" (§I, citing Plank et al. and
// Sancho et al.). Experiment X11 (DESIGN.md) quantifies that claim by
// comparing incremental against lossy compression on the climate workload
// (where every value changes every step) and on a sparse-update workload
// (where incremental shines).
//
// The Tracker keeps, per registered array, the value bits of the last
// checkpoint. A diff XORs current against previous bits — unchanged
// values become zero words, which DEFLATE collapses — and updates the
// baseline. Diffs are strictly ordered: each one applies on top of the
// previous, so restoring checkpoint k requires replaying diffs 1…k, the
// restart-cost drawback the paper's §V also notes.
package incr

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"lossyckpt/internal/grid"
	"lossyckpt/internal/gzipio"
)

// Errors returned by this package.
var (
	ErrUnknown  = errors.New("incr: unknown array")
	ErrSequence = errors.New("incr: diff applied out of sequence")
	ErrFormat   = errors.New("incr: malformed diff")
)

// Tracker produces and applies incremental checkpoints for a set of named
// arrays. It is not safe for concurrent use.
type Tracker struct {
	level int
	base  map[string][]uint64
	seq   map[string]uint64
}

// NewTracker returns a tracker compressing diffs at the given DEFLATE
// level (use gzipio.Default normally).
func NewTracker(level int) *Tracker {
	return &Tracker{
		level: level,
		base:  make(map[string][]uint64),
		seq:   make(map[string]uint64),
	}
}

// diff layout (little-endian):
//
//	uint64 sequence number (1 for the first diff after Register)
//	uint64 element count
//	gzip(XOR words)
const diffHeader = 16

// Register records the array's current content as the baseline. The first
// EncodeDiff after Register emits diff #1 against this state.
func (t *Tracker) Register(name string, f *grid.Field) {
	words := make([]uint64, f.Len())
	for i, v := range f.Data() {
		words[i] = math.Float64bits(v)
	}
	t.base[name] = words
	t.seq[name] = 0
}

// Registered reports whether name has a baseline.
func (t *Tracker) Registered(name string) bool {
	_, ok := t.base[name]
	return ok
}

// Rebase resets name's baseline to the array's current content and
// restarts its diff chain at sequence 0 — the escape hatch from the
// replay-cost drawback: after a full (non-incremental) checkpoint or a
// restore, the next EncodeDiff is #1 against the fresh state instead of
// extending an ever-longer chain. Unlike Register it refuses unknown
// names, so a typo cannot silently fork a second chain.
func (t *Tracker) Rebase(name string, f *grid.Field) error {
	if _, ok := t.base[name]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknown, name)
	}
	t.Register(name, f)
	return nil
}

// EncodeDiff produces the incremental checkpoint of the array against the
// last baseline and advances the baseline to the current content.
func (t *Tracker) EncodeDiff(name string, f *grid.Field) ([]byte, error) {
	base, ok := t.base[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknown, name)
	}
	if len(base) != f.Len() {
		return nil, fmt.Errorf("incr: %q changed size: baseline %d, field %d", name, len(base), f.Len())
	}
	xored := make([]byte, 8*len(base))
	for i, v := range f.Data() {
		bits := math.Float64bits(v)
		binary.LittleEndian.PutUint64(xored[8*i:], bits^base[i])
		base[i] = bits
	}
	gz, err := gzipio.Compress(xored, t.level, gzipio.InMemory, "")
	if err != nil {
		return nil, err
	}
	t.seq[name]++
	out := make([]byte, diffHeader+len(gz.Compressed))
	binary.LittleEndian.PutUint64(out[0:], t.seq[name])
	binary.LittleEndian.PutUint64(out[8:], uint64(len(base)))
	copy(out[diffHeader:], gz.Compressed)
	return out, nil
}

// Restorer replays a chain of diffs on top of a baseline to reconstruct
// the state at any checkpoint. It is the decode-side counterpart of
// Tracker and is not safe for concurrent use.
type Restorer struct {
	state map[string][]uint64
	seq   map[string]uint64
}

// NewRestorer starts from the same baseline contents the Tracker was
// registered with.
func NewRestorer() *Restorer {
	return &Restorer{
		state: make(map[string][]uint64),
		seq:   make(map[string]uint64),
	}
}

// Register records the baseline state for name (the content the matching
// Tracker.Register saw).
func (r *Restorer) Register(name string, f *grid.Field) {
	words := make([]uint64, f.Len())
	for i, v := range f.Data() {
		words[i] = math.Float64bits(v)
	}
	r.state[name] = words
	r.seq[name] = 0
}

// Rebase resets name's reconstructed state to the array's current
// content and restarts the expected diff sequence at 0 — the restore
// side of Tracker.Rebase. It refuses unknown names.
func (r *Restorer) Rebase(name string, f *grid.Field) error {
	if _, ok := r.state[name]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknown, name)
	}
	r.Register(name, f)
	return nil
}

// ApplyDiff advances the named state by one diff. Diffs must be applied in
// the order they were encoded.
func (r *Restorer) ApplyDiff(name string, diff []byte) error {
	state, ok := r.state[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknown, name)
	}
	if len(diff) < diffHeader {
		return fmt.Errorf("%w: %d bytes", ErrFormat, len(diff))
	}
	seq := binary.LittleEndian.Uint64(diff[0:])
	count := binary.LittleEndian.Uint64(diff[8:])
	if seq != r.seq[name]+1 {
		return fmt.Errorf("%w: %q diff #%d after #%d", ErrSequence, name, seq, r.seq[name])
	}
	if count != uint64(len(state)) {
		return fmt.Errorf("%w: %q diff covers %d elements, state has %d", ErrFormat, name, count, len(state))
	}
	xored, err := gzipio.Decompress(diff[diffHeader:])
	if err != nil {
		return err
	}
	if len(xored) != 8*len(state) {
		return fmt.Errorf("%w: %q payload %d bytes for %d elements", ErrFormat, name, len(xored), len(state))
	}
	for i := range state {
		state[i] ^= binary.LittleEndian.Uint64(xored[8*i:])
	}
	r.seq[name] = seq
	return nil
}

// State writes the current reconstructed values of name into f, which must
// have the registered length.
func (r *Restorer) State(name string, f *grid.Field) error {
	state, ok := r.state[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknown, name)
	}
	if f.Len() != len(state) {
		return fmt.Errorf("incr: %q state has %d elements, field %d", name, len(state), f.Len())
	}
	for i, w := range state {
		f.Data()[i] = math.Float64frombits(w)
	}
	return nil
}
