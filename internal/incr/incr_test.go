package incr

import (
	"encoding/binary"
	"errors"
	"math/rand"
	"testing"

	"lossyckpt/internal/grid"
	"lossyckpt/internal/gzipio"
)

func randomField(seed int64, n int) *grid.Field {
	f := grid.MustNew(n)
	rng := rand.New(rand.NewSource(seed))
	for i := range f.Data() {
		f.Data()[i] = rng.NormFloat64()
	}
	return f
}

func TestDiffChainRestoresExactly(t *testing.T) {
	f := randomField(1, 5000)
	tr := NewTracker(gzipio.Default)
	re := NewRestorer()
	tr.Register("x", f)
	re.Register("x", f)

	rng := rand.New(rand.NewSource(2))
	var diffs [][]byte
	var want []*grid.Field
	for step := 0; step < 5; step++ {
		// Mutate a subset of values.
		for k := 0; k < 500; k++ {
			f.Data()[rng.Intn(f.Len())] = rng.NormFloat64()
		}
		d, err := tr.EncodeDiff("x", f)
		if err != nil {
			t.Fatal(err)
		}
		diffs = append(diffs, d)
		want = append(want, f.Clone())
	}

	got := grid.MustNew(5000)
	for i, d := range diffs {
		if err := re.ApplyDiff("x", d); err != nil {
			t.Fatalf("diff %d: %v", i, err)
		}
		if err := re.State("x", got); err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want[i]) {
			t.Fatalf("state after diff %d not bit-exact", i)
		}
	}
}

func TestSparseUpdatesCompressWell(t *testing.T) {
	// The case incremental checkpointing is built for: only 1% of values
	// change between checkpoints.
	f := randomField(3, 100000)
	tr := NewTracker(gzipio.Default)
	tr.Register("x", f)
	rng := rand.New(rand.NewSource(4))
	for k := 0; k < 1000; k++ {
		f.Data()[rng.Intn(f.Len())] = rng.NormFloat64()
	}
	d, err := tr.EncodeDiff("x", f)
	if err != nil {
		t.Fatal(err)
	}
	if len(d) > f.Bytes()/10 {
		t.Errorf("sparse diff is %d bytes for %d raw; expected ≫10x reduction", len(d), f.Bytes())
	}
}

func TestDenseUpdatesCompressPoorly(t *testing.T) {
	// The paper's §I argument: when every value changes, the diff is as
	// incompressible as the data.
	f := randomField(5, 50000)
	tr := NewTracker(gzipio.Default)
	tr.Register("x", f)
	rng := rand.New(rand.NewSource(6))
	for i := range f.Data() {
		f.Data()[i] += 1e-9 * rng.NormFloat64() // everything changes a little
	}
	d, err := tr.EncodeDiff("x", f)
	if err != nil {
		t.Fatal(err)
	}
	if len(d) < f.Bytes()/2 {
		t.Errorf("dense diff is %d bytes for %d raw; expected poor compression", len(d), f.Bytes())
	}
}

func TestOutOfSequenceRejected(t *testing.T) {
	f := randomField(7, 100)
	tr := NewTracker(gzipio.Default)
	re := NewRestorer()
	tr.Register("x", f)
	re.Register("x", f)
	f.Data()[0] = 1
	d1, _ := tr.EncodeDiff("x", f)
	f.Data()[1] = 2
	d2, _ := tr.EncodeDiff("x", f)
	if err := re.ApplyDiff("x", d2); !errors.Is(err, ErrSequence) {
		t.Errorf("skipping diff #1: got %v", err)
	}
	if err := re.ApplyDiff("x", d1); err != nil {
		t.Fatal(err)
	}
	if err := re.ApplyDiff("x", d1); !errors.Is(err, ErrSequence) {
		t.Errorf("replaying diff #1: got %v", err)
	}
}

func TestUnknownNameAndFormatErrors(t *testing.T) {
	f := randomField(8, 10)
	tr := NewTracker(gzipio.Default)
	if _, err := tr.EncodeDiff("nope", f); !errors.Is(err, ErrUnknown) {
		t.Errorf("unknown encode: %v", err)
	}
	if !tr.Registered("nope") == false {
		t.Error("Registered returned wrong answer")
	}
	re := NewRestorer()
	if err := re.ApplyDiff("nope", make([]byte, 32)); !errors.Is(err, ErrUnknown) {
		t.Errorf("unknown apply: %v", err)
	}
	re.Register("x", f)
	if err := re.ApplyDiff("x", []byte{1, 2}); !errors.Is(err, ErrFormat) {
		t.Errorf("short diff: %v", err)
	}
	if err := re.State("nope", f); !errors.Is(err, ErrUnknown) {
		t.Errorf("unknown state: %v", err)
	}
	g := randomField(9, 11)
	if err := re.State("x", g); err == nil {
		t.Error("wrong-size state accepted")
	}
}

func TestSizeChangeRejected(t *testing.T) {
	f := randomField(10, 100)
	tr := NewTracker(gzipio.Default)
	tr.Register("x", f)
	g := randomField(11, 101)
	if _, err := tr.EncodeDiff("x", g); err == nil {
		t.Error("size change accepted")
	}
}

func TestCorruptDiffRejected(t *testing.T) {
	f := randomField(12, 1000)
	tr := NewTracker(gzipio.Default)
	re := NewRestorer()
	tr.Register("x", f)
	re.Register("x", f)
	f.Data()[0] = 42
	d, _ := tr.EncodeDiff("x", f)
	mut := append([]byte(nil), d...)
	mut[len(mut)-3] ^= 0xFF // corrupt gzip payload
	if err := re.ApplyDiff("x", mut); err == nil {
		t.Error("corrupt diff accepted")
	}
}

func TestRebaseRestartsChain(t *testing.T) {
	f := randomField(3, 2000)
	tr := NewTracker(gzipio.Default)
	re := NewRestorer()
	tr.Register("x", f)
	re.Register("x", f)

	// Advance the chain a couple of diffs.
	rng := rand.New(rand.NewSource(4))
	for step := 0; step < 2; step++ {
		for k := 0; k < 100; k++ {
			f.Data()[rng.Intn(f.Len())] = rng.NormFloat64()
		}
		d, err := tr.EncodeDiff("x", f)
		if err != nil {
			t.Fatal(err)
		}
		if err := re.ApplyDiff("x", d); err != nil {
			t.Fatal(err)
		}
	}

	// Rebase both sides on the current state (e.g. a full checkpoint was
	// just taken): the next diff is #1 again and applies on a fresh chain.
	if err := tr.Rebase("x", f); err != nil {
		t.Fatal(err)
	}
	if err := re.Rebase("x", f); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 100; k++ {
		f.Data()[rng.Intn(f.Len())] = rng.NormFloat64()
	}
	d, err := tr.EncodeDiff("x", f)
	if err != nil {
		t.Fatal(err)
	}
	if seq := binary.LittleEndian.Uint64(d[0:]); seq != 1 {
		t.Fatalf("post-rebase diff carries sequence %d, want 1", seq)
	}
	if err := re.ApplyDiff("x", d); err != nil {
		t.Fatalf("post-rebase diff rejected: %v", err)
	}
	got := grid.MustNew(2000)
	if err := re.State("x", got); err != nil {
		t.Fatal(err)
	}
	if !got.Equal(f) {
		t.Fatal("state after rebase + diff not bit-exact")
	}

	// A stale pre-rebase restorer must reject the restarted chain rather
	// than silently corrupt state.
	stale := NewRestorer()
	stale.Register("x", randomField(5, 2000))
	for i := 0; i < 2; i++ { // advance expected seq past 1
		stale.seq["x"] = uint64(i + 1)
	}
	if err := stale.ApplyDiff("x", d); !errors.Is(err, ErrSequence) {
		t.Fatalf("stale restorer accepted restarted chain: %v", err)
	}

	// Unknown names are refused — Rebase never forks a new chain.
	if err := tr.Rebase("nope", f); !errors.Is(err, ErrUnknown) {
		t.Fatalf("Tracker.Rebase unknown: %v", err)
	}
	if err := re.Rebase("nope", f); !errors.Is(err, ErrUnknown) {
		t.Fatalf("Restorer.Rebase unknown: %v", err)
	}
}
