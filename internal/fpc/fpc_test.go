package fpc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, vals []float64, tableBits int) []byte {
	t.Helper()
	data, err := Compress(vals, tableBits)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Decompress(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(vals) {
		t.Fatalf("decoded %d values, want %d", len(out), len(vals))
	}
	for i := range vals {
		if math.Float64bits(out[i]) != math.Float64bits(vals[i]) {
			t.Fatalf("value %d: got %x want %x", i, math.Float64bits(out[i]), math.Float64bits(vals[i]))
		}
	}
	return data
}

func TestRoundTripBasic(t *testing.T) {
	roundTrip(t, []float64{1, 2, 3, 4.5, -1e300, 0, math.Pi}, DefaultTableBits)
}

func TestRoundTripOddAndEvenCounts(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 100, 101} {
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = float64(i) * 1.1
		}
		roundTrip(t, vals, DefaultTableBits)
	}
}

func TestRoundTripSpecialValues(t *testing.T) {
	vals := []float64{
		math.NaN(), math.Inf(1), math.Inf(-1), 0, math.Copysign(0, -1),
		math.SmallestNonzeroFloat64, math.MaxFloat64, -math.MaxFloat64,
	}
	data, err := Compress(vals, DefaultTableBits)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Decompress(data)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if math.Float64bits(out[i]) != math.Float64bits(vals[i]) {
			t.Fatalf("special value %d not bit-exact", i)
		}
	}
}

func TestCompressesSmoothData(t *testing.T) {
	// Smooth, slowly varying series: predictions should hit often and the
	// output should be clearly smaller than 8 bytes/value.
	n := 100000
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = 1000 + math.Sin(float64(i)/500)
	}
	data := roundTrip(t, vals, DefaultTableBits)
	if len(data) >= 8*n {
		t.Errorf("smooth data did not compress: %d bytes for %d values", len(data), n)
	}
}

func TestRandomDataDoesNotExplode(t *testing.T) {
	// Incompressible data may expand slightly (nibble overhead) but must
	// stay under 8.5 bytes 8.5/8 = 1.0625x.
	rng := rand.New(rand.NewSource(1))
	n := 50000
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = math.Float64frombits(rng.Uint64())
	}
	data := roundTrip(t, vals, DefaultTableBits)
	if len(data) > n*17/2+32 {
		t.Errorf("random data expanded too much: %d bytes for %d values", len(data), n)
	}
}

func TestTableBitsValidation(t *testing.T) {
	for _, tb := range []int{3, 25, -1} {
		if _, err := Compress([]float64{1}, tb); err == nil {
			t.Errorf("tableBits %d accepted", tb)
		}
	}
	for _, tb := range []int{4, 12, 20} {
		roundTrip(t, []float64{1, 2, 3}, tb)
	}
}

func TestDecompressErrors(t *testing.T) {
	if _, err := Decompress(nil); err == nil {
		t.Error("nil input accepted")
	}
	if _, err := Decompress(make([]byte, 15)); err == nil {
		t.Error("zeroed header accepted")
	}
	good, _ := Compress([]float64{1, 2, 3, 4, 5}, DefaultTableBits)
	if _, err := Decompress(good[:len(good)-2]); err == nil {
		t.Error("truncated stream accepted")
	}
	if _, err := Decompress(append(good, 0xAB)); err == nil {
		t.Error("trailing garbage accepted")
	}
	bad := append([]byte(nil), good...)
	bad[0] ^= 1
	if _, err := Decompress(bad); err == nil {
		t.Error("bad magic accepted")
	}
	bad2 := append([]byte(nil), good...)
	bad2[4] = 99
	if _, err := Decompress(bad2); err == nil {
		t.Error("bad version accepted")
	}
	bad3 := append([]byte(nil), good...)
	bad3[5] = 60
	if _, err := Decompress(bad3); err == nil {
		t.Error("bad tableBits accepted")
	}
}

// Property: Compress/Decompress is a bit-exact identity for arbitrary
// doubles, including NaN payloads.
func TestQuickRoundTrip(t *testing.T) {
	fn := func(raw []uint64) bool {
		vals := make([]float64, len(raw))
		for i, u := range raw {
			vals[i] = math.Float64frombits(u)
		}
		data, err := Compress(vals, 8)
		if err != nil {
			return false
		}
		out, err := Decompress(data)
		if err != nil || len(out) != len(vals) {
			return false
		}
		for i := range vals {
			if math.Float64bits(out[i]) != raw[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
