// Package fpc implements a lossless double-precision floating-point
// compressor in the style of FPC (Burtscher & Ratanaworabhan, "High
// Throughput Compression of Double-Precision Floating-Point Data",
// DCC 2007) — reference [17] of Sasaki et al. (IPDPS 2015). It serves as
// an additional lossless baseline beyond gzip for the experiments
// (DESIGN.md experiment X3): the paper argues lossless floating-point
// compression is fundamentally limited on checkpoint data, and FPC is the
// strongest representative of that family.
//
// Each value is predicted twice — by an FCM (finite context method) table
// keyed on a hash of recent values and by a DFCM (differential FCM) table
// keyed on a hash of recent deltas — and XORed with the closer prediction.
// The XOR residue's leading zero bytes are elided: a 4-bit header per value
// records which predictor won (1 bit) and how many leading zero bytes were
// stripped (3 bits), followed by the remaining residue bytes.
package fpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/bits"
)

// ErrFormat indicates malformed compressed data.
var ErrFormat = errors.New("fpc: malformed data")

// DefaultTableBits sizes the predictor hash tables at 2^16 entries each
// (1 MB total), comparable to the original FPC's defaults.
const DefaultTableBits = 16

const (
	magic   = 0x43504646 // "FFPC"
	version = 1
)

// lzbCode maps a leading-zero-byte count (0..8) to the 3-bit code. Counts
// of 7 are transmitted as 6 (one extra zero byte is sent explicitly), as in
// the original FPC, freeing a code for the common all-zero case.
func lzbCode(lzb int) (code, encodedLZB int) {
	if lzb >= 8 {
		return 7, 8
	}
	if lzb == 7 {
		return 6, 6
	}
	return lzb, lzb
}

// codeLZB is the inverse of lzbCode's code column.
func codeLZB(code int) int {
	if code == 7 {
		return 8
	}
	return code
}

type predictor struct {
	fcm      []uint64
	dfcm     []uint64
	fcmHash  uint64
	dfcmHash uint64
	last     uint64
	mask     uint64
}

func newPredictor(tableBits int) *predictor {
	size := 1 << uint(tableBits)
	return &predictor{
		fcm:  make([]uint64, size),
		dfcm: make([]uint64, size),
		mask: uint64(size - 1),
	}
}

// predictions returns the FCM and DFCM predictions for the next value.
func (p *predictor) predictions() (fcm, dfcm uint64) {
	return p.fcm[p.fcmHash&p.mask], p.dfcm[p.dfcmHash&p.mask] + p.last
}

// update trains both tables with the actual value.
func (p *predictor) update(v uint64) {
	p.fcm[p.fcmHash&p.mask] = v
	p.fcmHash = (p.fcmHash << 6) ^ (v >> 48)
	delta := v - p.last
	p.dfcm[p.dfcmHash&p.mask] = delta
	p.dfcmHash = (p.dfcmHash << 2) ^ (delta >> 40)
	p.last = v
}

// Compress encodes the values losslessly. tableBits ∈ [4, 24]; pass
// DefaultTableBits normally.
func Compress(values []float64, tableBits int) ([]byte, error) {
	if tableBits < 4 || tableBits > 24 {
		return nil, fmt.Errorf("fpc: tableBits %d out of range [4,24]", tableBits)
	}
	p := newPredictor(tableBits)

	// Header: magic, version, tableBits, count.
	out := make([]byte, 0, 16+len(values)*9/2)
	var hdr [15]byte
	binary.LittleEndian.PutUint32(hdr[0:], magic)
	hdr[4] = version
	hdr[5] = byte(tableBits)
	hdr[6] = 0 // reserved
	binary.LittleEndian.PutUint64(hdr[7:], uint64(len(values)))
	out = append(out, hdr[:]...)

	// Nibble headers are buffered pairwise; residue bytes stream after each
	// pair, as in the original format. Residues stage in fixed scratch
	// buffers — no per-value allocation.
	var nibbleBuf [2]byte
	var resBuf [2][8]byte
	var resLen [2]int
	flush := func(n int) {
		out = append(out, nibbleBuf[0]<<4|nibbleBuf[1])
		for i := 0; i < n; i++ {
			out = append(out, resBuf[i][:resLen[i]]...)
		}
	}
	for i, v := range values {
		bitsV := math.Float64bits(v)
		f, d := p.predictions()
		xf, xd := bitsV^f, bitsV^d
		sel := byte(0)
		x := xf
		if clz(xd) > clz(xf) {
			sel, x = 1, xd
		}
		lzb := clz(x)
		code, enc := lzbCode(lzb)
		nib := sel<<3 | byte(code)

		slot := i % 2
		nibbleBuf[slot] = nib
		var res [8]byte
		binary.BigEndian.PutUint64(res[:], x)
		resLen[slot] = copy(resBuf[slot][:], res[enc:])
		if slot == 1 {
			flush(2)
		}
		p.update(bitsV)
	}
	if len(values)%2 == 1 {
		nibbleBuf[1] = 0
		flush(1)
	}
	return out, nil
}

// clz returns the number of leading zero bytes of x (0..8).
func clz(x uint64) int { return bits.LeadingZeros64(x) / 8 }

// Decompress decodes a stream produced by Compress.
func Decompress(data []byte) ([]float64, error) {
	if len(data) < 15 {
		return nil, fmt.Errorf("%w: short header", ErrFormat)
	}
	if binary.LittleEndian.Uint32(data[0:]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrFormat)
	}
	if data[4] != version {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrFormat, data[4])
	}
	tableBits := int(data[5])
	if tableBits < 4 || tableBits > 24 {
		return nil, fmt.Errorf("%w: tableBits %d", ErrFormat, tableBits)
	}
	count := binary.LittleEndian.Uint64(data[7:])
	if count > uint64(len(data))*8 { // ≥ half a nibble per value
		return nil, fmt.Errorf("%w: implausible count %d", ErrFormat, count)
	}
	p := newPredictor(tableBits)
	// Grow the output as data actually decodes; preallocating `count`
	// values would let a forged header force a 64x-amplified allocation.
	prealloc := count
	if prealloc > 1<<16 {
		prealloc = 1 << 16
	}
	out := make([]float64, 0, prealloc)
	pos := 15
	for uint64(len(out)) < count {
		if pos >= len(data) {
			return nil, fmt.Errorf("%w: truncated at value %d", ErrFormat, len(out))
		}
		nibs := data[pos]
		pos++
		pair := [2]byte{nibs >> 4, nibs & 0x0F}
		for slot := 0; slot < 2 && uint64(len(out)) < count; slot++ {
			nib := pair[slot]
			sel := nib >> 3
			lzb := codeLZB(int(nib & 7))
			nres := 8 - lzb
			if pos+nres > len(data) {
				return nil, fmt.Errorf("%w: truncated residue at value %d", ErrFormat, len(out))
			}
			var res [8]byte
			copy(res[lzb:], data[pos:pos+nres])
			pos += nres
			x := binary.BigEndian.Uint64(res[:])
			f, d := p.predictions()
			var v uint64
			if sel == 0 {
				v = x ^ f
			} else {
				v = x ^ d
			}
			p.update(v)
			out = append(out, math.Float64frombits(v))
		}
	}
	if pos != len(data) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrFormat, len(data)-pos)
	}
	return out, nil
}
