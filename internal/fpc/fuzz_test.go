package fpc

import (
	"math"
	"testing"
)

// FuzzDecompress hardens the FPC decoder against arbitrary input.
func FuzzDecompress(f *testing.F) {
	f.Add([]byte{})
	good, _ := Compress([]float64{1, 2, 3, 3.5, -7}, 8)
	f.Add(good)
	f.Add(good[:len(good)-1])
	mut := append([]byte(nil), good...)
	mut[6] ^= 0x10
	f.Add(mut)
	f.Fuzz(func(t *testing.T, data []byte) {
		vals, err := Decompress(data)
		if err == nil {
			// A decodable stream must re-encode to the same values.
			re, cerr := Compress(vals, 8)
			if cerr != nil {
				t.Fatalf("decoded values do not re-compress: %v", cerr)
			}
			back, derr := Decompress(re)
			if derr != nil || len(back) != len(vals) {
				t.Fatalf("re-encoded stream broken: %v", derr)
			}
		}
	})
}

// FuzzRoundTrip checks bit-exactness over arbitrary float bit patterns.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15})
	f.Fuzz(func(t *testing.T, raw []byte) {
		vals := bytesToValues(raw)
		data, err := Compress(vals, 8)
		if err != nil {
			t.Fatal(err)
		}
		out, err := Decompress(data)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != len(vals) {
			t.Fatalf("decoded %d of %d values", len(out), len(vals))
		}
		for i := range vals {
			if toBits(out[i]) != toBits(vals[i]) {
				t.Fatalf("value %d not bit-exact", i)
			}
		}
	})
}

// bytesToValues reinterprets fuzz bytes as float64 values (8 bytes each,
// trailing remainder dropped).
func bytesToValues(raw []byte) []float64 {
	n := len(raw) / 8
	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		var u uint64
		for j := 0; j < 8; j++ {
			u = u<<8 | uint64(raw[8*i+j])
		}
		vals[i] = math.Float64frombits(u)
	}
	return vals
}

func toBits(v float64) uint64 { return math.Float64bits(v) }
