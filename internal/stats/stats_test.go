package stats

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCompressionRate(t *testing.T) {
	if got := CompressionRate(19, 100); got != 19 {
		t.Errorf("CompressionRate(19,100) = %g, want 19", got)
	}
	if got := CompressionRate(100, 100); got != 100 {
		t.Errorf("identity rate = %g, want 100", got)
	}
	if !math.IsNaN(CompressionRate(5, 0)) {
		t.Error("zero original size should yield NaN")
	}
}

func TestRelativeErrorsEq6(t *testing.T) {
	// Range is 10-0 = 10; per-element errors 1 and 2 normalize to 0.1, 0.2.
	orig := []float64{0, 10, 5}
	approx := []float64{1, 8, 5}
	res, err := RelativeErrors(orig, approx, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.1, 0.2, 0}
	for i := range want {
		if math.Abs(res[i]-want[i]) > 1e-15 {
			t.Errorf("re[%d] = %g, want %g", i, res[i], want[i])
		}
	}
}

func TestRelativeErrorsInputChecks(t *testing.T) {
	if _, err := RelativeErrors([]float64{1}, []float64{1, 2}, nil); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := RelativeErrors(nil, nil, nil); err == nil {
		t.Error("empty input accepted")
	}
}

func TestRelativeErrorsConstantArray(t *testing.T) {
	res, err := RelativeErrors([]float64{5, 5}, []float64{5, 6}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Degenerate range falls back to absolute error.
	if res[0] != 0 || res[1] != 1 {
		t.Errorf("constant-array errors = %v, want [0 1]", res)
	}
}

func TestRelativeErrorsNaN(t *testing.T) {
	res, err := RelativeErrors([]float64{0, math.NaN(), 10}, []float64{0, math.NaN(), 10}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range res {
		if e != 0 {
			t.Errorf("identical arrays with NaN: re[%d]=%g", i, e)
		}
	}
}

func TestCompareSummary(t *testing.T) {
	orig := []float64{0, 10}
	approx := []float64{1, 10}
	s, err := Compare(orig, approx)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.AvgPct-5) > 1e-12 { // (0.1+0)/2 = 0.05 -> 5%
		t.Errorf("AvgPct = %g, want 5", s.AvgPct)
	}
	if math.Abs(s.MaxPct-10) > 1e-12 {
		t.Errorf("MaxPct = %g, want 10", s.MaxPct)
	}
	if s.N != 2 {
		t.Errorf("N = %d, want 2", s.N)
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
}

func TestIdenticalArraysZeroError(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = rng.NormFloat64()
	}
	s, err := Compare(vals, vals)
	if err != nil {
		t.Fatal(err)
	}
	if s.AvgPct != 0 || s.MaxPct != 0 || s.RMSEPct != 0 {
		t.Errorf("self-comparison nonzero: %v", s)
	}
}

func TestHistogram(t *testing.T) {
	vals := []float64{0, 0.1, 0.2, 5, 9.9, 10}
	h, err := NewHistogram(vals, 10)
	if err != nil {
		t.Fatal(err)
	}
	if h.Min != 0 || h.Max != 10 {
		t.Errorf("range = [%g,%g], want [0,10]", h.Min, h.Max)
	}
	if h.Total != 6 {
		t.Errorf("Total = %d, want 6", h.Total)
	}
	if h.Counts[0] != 3 { // 0, 0.1, 0.2
		t.Errorf("bin 0 = %d, want 3", h.Counts[0])
	}
	if h.Counts[9] != 2 { // 9.9 and 10 (max clamps into last bin)
		t.Errorf("bin 9 = %d, want 2", h.Counts[9])
	}
	if _, err := NewHistogram(vals, 0); err == nil {
		t.Error("0 bins accepted")
	}
}

func TestHistogramSpikeFraction(t *testing.T) {
	vals := make([]float64, 100)
	for i := 0; i < 95; i++ {
		vals[i] = 0.001 * float64(i%3)
	}
	for i := 95; i < 100; i++ {
		vals[i] = 100
	}
	h, _ := NewHistogram(vals, 64)
	if f := h.SpikeFraction(); f < 0.9 {
		t.Errorf("SpikeFraction = %g, want ≥0.9 for spiky data", f)
	}
	empty, _ := NewHistogram(nil, 4)
	if empty.SpikeFraction() != 0 {
		t.Error("empty histogram SpikeFraction != 0")
	}
}

func TestRandomWalkFitRecoversCoefficient(t *testing.T) {
	// Perfect sqrt growth: err(t) = 0.3*sqrt(t).
	errs := make([]float64, 500)
	for i := range errs {
		errs[i] = 0.3 * math.Sqrt(float64(i+1))
	}
	c, r2, err := RandomWalkFit(errs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c-0.3) > 1e-12 {
		t.Errorf("c = %g, want 0.3", c)
	}
	if r2 < 0.999 {
		t.Errorf("R² = %g, want ≈1", r2)
	}
}

func TestRandomWalkFitNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	errs := make([]float64, 1000)
	for i := range errs {
		errs[i] = 0.5*math.Sqrt(float64(i+1)) + rng.NormFloat64()*0.5
	}
	c, r2, err := RandomWalkFit(errs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c-0.5) > 0.05 {
		t.Errorf("noisy fit c = %g, want ≈0.5", c)
	}
	if r2 < 0.9 {
		t.Errorf("noisy fit R² = %g, want >0.9", r2)
	}
}

func TestRandomWalkFitErrors(t *testing.T) {
	if _, _, err := RandomWalkFit([]float64{1}); err == nil {
		t.Error("single point accepted")
	}
}

// Property: relative errors are always in [0, 1] when approx values stay
// within the original range.
func TestQuickRelativeErrorBounded(t *testing.T) {
	fn := func(raw []float64, seed int64) bool {
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			vals = append(vals, math.Mod(v, 1e9))
		}
		if len(vals) < 2 {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		approx := make([]float64, len(vals))
		for i := range approx {
			approx[i] = vals[rng.Intn(len(vals))] // stays within range
		}
		res, err := RelativeErrors(vals, approx, nil)
		if err != nil {
			return false
		}
		for _, e := range res {
			if e < 0 || e > 1+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMaxAbsError(t *testing.T) {
	got, err := MaxAbsError([]float64{0, 10, -5}, []float64{1, 8, -5})
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Errorf("MaxAbsError = %g, want 2", got)
	}
	v := []float64{1, 2, 3}
	if got, _ := MaxAbsError(v, v); got != 0 {
		t.Errorf("self-comparison = %g, want 0", got)
	}
}

func TestMaxAbsErrorNaN(t *testing.T) {
	// NaN at the same index on both sides is "equal" (no error contribution).
	nan := math.NaN()
	got, err := MaxAbsError([]float64{nan, 0, 4}, []float64{nan, 1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("paired NaN should be skipped: got %g, want 1", got)
	}
	// NaN on one side only poisons the result.
	got, err = MaxAbsError([]float64{0, nan}, []float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(got) {
		t.Errorf("one-sided NaN = %g, want NaN", got)
	}
}

func TestMaxAbsErrorInputChecks(t *testing.T) {
	if _, err := MaxAbsError([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := MaxAbsError(nil, nil); err == nil {
		t.Error("empty input accepted")
	}
}

func TestPSNRIdentical(t *testing.T) {
	v := []float64{1, 2, 3}
	p, err := PSNR(v, v)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(p, 1) {
		t.Errorf("identical arrays PSNR = %g, want +Inf", p)
	}
}

func TestPSNRKnownValue(t *testing.T) {
	// Range 10, constant error 1 -> RMSE 1 -> PSNR = 20 dB.
	orig := []float64{0, 10}
	approx := []float64{1, 9}
	p, err := PSNR(orig, approx)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-20) > 1e-9 {
		t.Errorf("PSNR = %g, want 20", p)
	}
}

func TestPSNRMonotoneInError(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	orig := make([]float64, 1000)
	for i := range orig {
		orig[i] = rng.NormFloat64() * 10
	}
	noisy := func(scale float64) []float64 {
		out := make([]float64, len(orig))
		r2 := rand.New(rand.NewSource(4))
		for i := range out {
			out[i] = orig[i] + scale*r2.NormFloat64()
		}
		return out
	}
	small, _ := PSNR(orig, noisy(0.001))
	large, _ := PSNR(orig, noisy(1))
	if small <= large {
		t.Errorf("PSNR not monotone: small-noise %g ≤ large-noise %g", small, large)
	}
}

func TestPSNRErrors(t *testing.T) {
	if _, err := PSNR([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := PSNR(nil, nil); err == nil {
		t.Error("empty accepted")
	}
	// NaN only on one side => -Inf (worst possible).
	p, err := PSNR([]float64{1, 2}, []float64{1, math.NaN()})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(p, -1) {
		t.Errorf("one-sided NaN PSNR = %g, want -Inf", p)
	}
}

// TestMaxRelError is the table-driven check of the guard's rel-bound
// metric: Eq. 6's maximum as a fraction, range from the original data,
// constant-array fallback to absolute error, MaxAbsError NaN semantics.
func TestMaxRelError(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		name   string
		orig   []float64
		approx []float64
		want   float64 // NaN means "want NaN"
	}{
		{"identical", []float64{1, 2, 3}, []float64{1, 2, 3}, 0},
		{"simple", []float64{0, 10}, []float64{1, 10}, 0.1},
		{"max at end", []float64{0, 5, 10}, []float64{0, 5, 12}, 0.2},
		{"negative range", []float64{-4, 4}, []float64{-4, 6}, 0.25},
		{"constant falls back to abs", []float64{7, 7, 7}, []float64{7, 7, 9}, 2},
		{"paired NaNs are exact", []float64{nan, 0, 2}, []float64{nan, 0, 1}, 0.5},
		{"one-sided NaN poisons", []float64{1, 2}, []float64{1, nan}, nan},
		{"range ignores NaN", []float64{nan, 0, 4}, []float64{nan, 1, 4}, 0.25},
	}
	for _, tc := range cases {
		got, err := MaxRelError(tc.orig, tc.approx)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if math.IsNaN(tc.want) {
			if !math.IsNaN(got) {
				t.Errorf("%s: got %g, want NaN", tc.name, got)
			}
			continue
		}
		if math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("%s: got %g, want %g", tc.name, got, tc.want)
		}
	}
}

// TestMaxRelErrorMatchesSummary: MaxRelError × 100 must agree with the
// Compare summary's MaxPct — the diff subcommand relies on that.
func TestMaxRelErrorMatchesSummary(t *testing.T) {
	orig := []float64{0, 1, 2, 3, 4, 5, 6, 7}
	approx := []float64{0, 1.25, 2, 2.5, 4, 5, 6.1, 7}
	rel, err := MaxRelError(orig, approx)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Compare(orig, approx)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rel*100-s.MaxPct) > 1e-12 {
		t.Errorf("MaxRelError*100 = %g, Summary.MaxPct = %g", rel*100, s.MaxPct)
	}
}

// TestMaxRelErrorInputChecks mirrors MaxAbsError's validation.
func TestMaxRelErrorInputChecks(t *testing.T) {
	if _, err := MaxRelError([]float64{1}, []float64{1, 2}); !errors.Is(err, ErrInput) {
		t.Errorf("length mismatch: err = %v, want ErrInput", err)
	}
	if _, err := MaxRelError(nil, nil); !errors.Is(err, ErrInput) {
		t.Errorf("empty: err = %v, want ErrInput", err)
	}
}
