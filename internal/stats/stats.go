// Package stats implements the evaluation metrics of Sasaki et al.
// (IPDPS 2015, §IV-A): the compression rate (Eq. 5), the range-normalized
// relative error (Eq. 6) and its average/maximum aggregates, plus the
// random-walk error-growth analysis used to interpret Fig. 10 (§IV-E).
package stats

import (
	"errors"
	"fmt"
	"math"
)

// ErrInput indicates mismatched or empty inputs.
var ErrInput = errors.New("stats: invalid input")

// CompressionRate returns the paper's cr = cs_comp / cs_orig × 100 (Eq. 5),
// in percent. Lower is better.
func CompressionRate(compressedBytes, originalBytes int) float64 {
	if originalBytes <= 0 {
		return math.NaN()
	}
	return 100 * float64(compressedBytes) / float64(originalBytes)
}

// RelativeErrors computes re_i = |x_i − x̃_i| / (max_j x_j − min_j x_j)
// (Eq. 6) for every element, appending to dst. The normalizing range is
// taken from the original data; if it is zero (constant array), absolute
// errors are returned instead (documented deviation: Eq. 6 is undefined
// there, and a constant array either reconstructs exactly, giving zeros
// either way, or any error is best reported un-normalized).
func RelativeErrors(orig, approx []float64, dst []float64) ([]float64, error) {
	if len(orig) != len(approx) {
		return nil, fmt.Errorf("%w: %d original vs %d approximate values", ErrInput, len(orig), len(approx))
	}
	if len(orig) == 0 {
		return nil, fmt.Errorf("%w: empty", ErrInput)
	}
	rng := normRange(orig)
	for i := range orig {
		d := math.Abs(orig[i] - approx[i])
		if math.IsNaN(orig[i]) && math.IsNaN(approx[i]) {
			d = 0
		}
		dst = append(dst, d/rng)
	}
	return dst, nil
}

// normRange returns the Eq. 6 normalizing divisor: max − min over the
// original data ignoring NaNs, falling back to 1 when the range is zero
// (constant array) or non-finite — the documented RelativeErrors
// deviation, under which relative errors degrade to absolute ones.
func normRange(orig []float64) float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range orig {
		if math.IsNaN(v) {
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	rng := hi - lo
	if rng == 0 || math.IsInf(rng, 0) || math.IsNaN(rng) {
		rng = 1
	}
	return rng
}

// MaxRelError returns max_i re_i (Eq. 6) as a fraction, not percent: the
// quantity a relative error bound (guard.Policy.MaxRel) promises to cap.
// The normalizing range comes from the original data with the same
// constant-array fallback as RelativeErrors. NaN handling follows
// MaxAbsError: a pair of NaNs at one index counts as zero error, a NaN
// paired with a number poisons the result to NaN.
func MaxRelError(orig, approx []float64) (float64, error) {
	maxAbs, err := MaxAbsError(orig, approx)
	if err != nil {
		return 0, err
	}
	if math.IsNaN(maxAbs) {
		return maxAbs, nil
	}
	return maxAbs / normRange(orig), nil
}

// MaxAbsError returns max_i |x_i − x̃_i|, the un-normalized companion to
// the paper's relative errors (Eq. 6) — the quantity an absolute
// ErrorBound promises to cap. A pair of NaNs at the same index counts as
// zero error; a NaN paired with a number yields NaN (the comparison is
// meaningless, and hiding it would overstate fidelity).
func MaxAbsError(orig, approx []float64) (float64, error) {
	if len(orig) != len(approx) {
		return 0, fmt.Errorf("%w: %d original vs %d approximate values", ErrInput, len(orig), len(approx))
	}
	if len(orig) == 0 {
		return 0, fmt.Errorf("%w: empty", ErrInput)
	}
	var max float64
	for i := range orig {
		d := math.Abs(orig[i] - approx[i])
		if math.IsNaN(d) {
			if math.IsNaN(orig[i]) && math.IsNaN(approx[i]) {
				continue
			}
			return math.NaN(), nil
		}
		if d > max {
			max = d
		}
	}
	return max, nil
}

// Summary aggregates an error distribution the way the paper reports it.
type Summary struct {
	// AvgPct is the average relative error in percent (the paper's
	// "average relative error": Σ re_i / m × 100).
	AvgPct float64
	// MaxPct is the maximum relative error in percent.
	MaxPct float64
	// RMSEPct is the root-mean-square relative error in percent
	// (additional to the paper; useful for trend plots).
	RMSEPct float64
	// N is the number of elements compared.
	N int
}

// String implements fmt.Stringer.
func (s Summary) String() string {
	return fmt.Sprintf("avg=%.4g%% max=%.4g%% rmse=%.4g%% (n=%d)", s.AvgPct, s.MaxPct, s.RMSEPct, s.N)
}

// Compare computes the relative-error summary between an original and a
// reconstructed array.
func Compare(orig, approx []float64) (Summary, error) {
	res, err := RelativeErrors(orig, approx, nil)
	if err != nil {
		return Summary{}, err
	}
	var sum, sq, max float64
	for _, e := range res {
		sum += e
		sq += e * e
		if e > max {
			max = e
		}
	}
	n := float64(len(res))
	return Summary{
		AvgPct:  100 * sum / n,
		MaxPct:  100 * max,
		RMSEPct: 100 * math.Sqrt(sq/n),
		N:       len(res),
	}, nil
}

// PSNR returns the peak signal-to-noise ratio in decibels between an
// original and a reconstructed array: 20·log10(range/RMSE). It is the
// metric later lossy scientific-data compressors (SZ, ZFP) standardize on,
// provided here so results can be compared across that literature.
// Identical arrays yield +Inf.
func PSNR(orig, approx []float64) (float64, error) {
	if len(orig) != len(approx) {
		return 0, fmt.Errorf("%w: %d vs %d values", ErrInput, len(orig), len(approx))
	}
	if len(orig) == 0 {
		return 0, fmt.Errorf("%w: empty", ErrInput)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	var sq float64
	for i, v := range orig {
		if !math.IsNaN(v) {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		d := v - approx[i]
		if math.IsNaN(d) {
			if math.IsNaN(v) && math.IsNaN(approx[i]) {
				d = 0
			} else {
				return math.Inf(-1), nil
			}
		}
		sq += d * d
	}
	rng := hi - lo
	if rng <= 0 || math.IsInf(rng, 0) {
		rng = 1
	}
	rmse := math.Sqrt(sq / float64(len(orig)))
	if rmse == 0 {
		return math.Inf(1), nil
	}
	return 20 * math.Log10(rng/rmse), nil
}

// Histogram buckets values into n equal-width bins over [min, max].
type Histogram struct {
	Min, Max float64
	Counts   []int
	Total    int
}

// NewHistogram builds an n-bin histogram of the finite values.
func NewHistogram(values []float64, n int) (*Histogram, error) {
	if n < 1 {
		return nil, fmt.Errorf("%w: %d bins", ErrInput, n)
	}
	h := &Histogram{Counts: make([]int, n)}
	h.Min, h.Max = math.Inf(1), math.Inf(-1)
	for _, v := range values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		if v < h.Min {
			h.Min = v
		}
		if v > h.Max {
			h.Max = v
		}
	}
	for _, v := range values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		i := 0
		if h.Max > h.Min {
			i = int(float64(n) * (v - h.Min) / (h.Max - h.Min))
			if i >= n {
				i = n - 1
			}
		}
		h.Counts[i]++
		h.Total++
	}
	return h, nil
}

// SpikeFraction returns the share of values in the fullest bin — a measure
// of how concentrated the distribution is (the paper's premise is that
// wavelet high bands have a strong spike near zero).
func (h *Histogram) SpikeFraction() float64 {
	if h.Total == 0 {
		return 0
	}
	max := 0
	for _, c := range h.Counts {
		if c > max {
			max = c
		}
	}
	return float64(max) / float64(h.Total)
}

// RandomWalkFit fits err(t) ≈ c·√(t−t0) by least squares over a time series
// of errors, as in the paper's §IV-E discussion ("the expected errors after
// n steps becomes the order of √n"). Steps are 1-based offsets from the
// restart point. It returns the coefficient c and the coefficient of
// determination R².
func RandomWalkFit(errs []float64) (c, r2 float64, err error) {
	if len(errs) < 2 {
		return 0, 0, fmt.Errorf("%w: need ≥2 points", ErrInput)
	}
	// Least squares for y = c·x with x = √t: c = Σxy / Σx².
	var sxy, sxx, sy, syy float64
	n := float64(len(errs))
	for i, e := range errs {
		x := math.Sqrt(float64(i + 1))
		sxy += x * e
		sxx += x * x
		sy += e
		syy += e * e
	}
	if sxx == 0 {
		return 0, 0, fmt.Errorf("%w: degenerate abscissa", ErrInput)
	}
	c = sxy / sxx
	// R² against the mean model.
	var ssRes float64
	for i, e := range errs {
		x := math.Sqrt(float64(i + 1))
		d := e - c*x
		ssRes += d * d
	}
	ssTot := syy - sy*sy/n
	if ssTot == 0 {
		if ssRes == 0 {
			return c, 1, nil
		}
		return c, 0, nil
	}
	return c, 1 - ssRes/ssTot, nil
}
