package synth

import (
	"math"
	"testing"

	"lossyckpt/internal/stats"
	"lossyckpt/internal/wavelet"
)

func TestGenerateAllKindsAllDims(t *testing.T) {
	shapes := [][]int{{4096}, {128, 64}, {64, 32, 2}}
	for _, kind := range Kinds {
		for _, shape := range shapes {
			f, err := Generate(kind, 1, shape...)
			if err != nil {
				t.Fatalf("%v %v: %v", kind, shape, err)
			}
			for i, v := range f.Data() {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("%v %v: non-finite value at %d", kind, shape, i)
				}
			}
			min, max := f.MinMax()
			if min == max {
				t.Errorf("%v %v: constant output", kind, shape)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	for _, kind := range Kinds {
		a, _ := Generate(kind, 7, 64, 32)
		b, _ := Generate(kind, 7, 64, 32)
		if !a.Equal(b) {
			t.Errorf("%v: same seed produced different data", kind)
		}
		c, _ := Generate(kind, 8, 64, 32)
		if a.Equal(c) {
			t.Errorf("%v: different seeds produced identical data", kind)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Smooth, 1); err == nil {
		t.Error("no shape accepted")
	}
	if _, err := Generate(Smooth, 1, 2, 2, 2, 2); err == nil {
		t.Error("4D shape accepted")
	}
	if _, err := Generate(Kind(99), 1, 16); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := Generate(Smooth, 1, 0); err == nil {
		t.Error("zero extent accepted")
	}
}

// spikeFraction measures how concentrated the wavelet high band is — the
// property that orders the generators from compressible to incompressible.
func spikeFraction(t *testing.T, kind Kind) float64 {
	t.Helper()
	f, err := Generate(kind, 3, 256, 64)
	if err != nil {
		t.Fatal(err)
	}
	p, err := wavelet.NewPlan(f.Shape(), 1, wavelet.Haar)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Transform(f); err != nil {
		t.Fatal(err)
	}
	high, err := p.GatherHigh(f, nil)
	if err != nil {
		t.Fatal(err)
	}
	h, err := stats.NewHistogram(high, 64)
	if err != nil {
		t.Fatal(err)
	}
	return h.SpikeFraction()
}

func TestKindsSpanTheSmoothnessSpectrum(t *testing.T) {
	smooth := spikeFraction(t, Smooth)
	noise := spikeFraction(t, Noise)
	// A uniform high-band distribution over 64 bins would put ~0.016 in
	// the fullest bin; pure sinusoids give an arcsine-like (still strongly
	// concentrated) distribution.
	if smooth < 0.2 {
		t.Errorf("smooth spike fraction %.2f; expected concentration ≫ uniform", smooth)
	}
	if noise > smooth {
		t.Errorf("noise (%.2f) more concentrated than smooth (%.2f)", noise, smooth)
	}
}

func TestStringNames(t *testing.T) {
	want := map[Kind]string{Smooth: "smooth", Turbulent: "turbulent", Shock: "shock", Noise: "noise", Mixed: "mixed"}
	for k, name := range want {
		if k.String() != name {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), name)
		}
	}
}
