// Package synth generates reference datasets spanning the data classes the
// reproduced paper's argument turns on. The paper claims wavelet-based
// lossy compression works because "physical quantities … does not
// spatially changed much" (§II-C) and shows its limits when smoothness
// fails. These generators let the dataset-robustness experiment (X12,
// DESIGN.md) and the test suites probe the compressor across the whole
// spectrum — from ideal smooth fields through turbulence-like spectra to
// shocks and pure noise — with deterministic, seeded output.
//
// All generators fill a caller-shaped 3D field and are O(n) except the
// spectral cascade, which superposes a fixed number of modes per octave.
package synth

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"lossyckpt/internal/grid"
)

// ErrShape indicates an unsupported target shape.
var ErrShape = errors.New("synth: invalid shape")

// Kind selects a generator.
type Kind int

const (
	// Smooth is the paper's ideal case: a few low-wavenumber sinusoids.
	Smooth Kind = iota
	// Turbulent superposes modes with a Kolmogorov-like k^(-5/3) energy
	// spectrum — rough but correlated, like resolved turbulence fields.
	Turbulent
	// Shock is smooth with an embedded sharp front — the discontinuous
	// case where quantizing pooled high bands hurts most.
	Shock
	// Noise is uncorrelated Gaussian noise — the incompressible floor.
	Noise
	// Mixed is Smooth plus sparse large outliers, the distribution shape
	// (central spike + heavy tails) the proposed quantizer targets.
	Mixed
)

// Kinds lists every generator in a stable order.
var Kinds = []Kind{Smooth, Turbulent, Shock, Noise, Mixed}

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Smooth:
		return "smooth"
	case Turbulent:
		return "turbulent"
	case Shock:
		return "shock"
	case Noise:
		return "noise"
	case Mixed:
		return "mixed"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Generate fills a new field of the given shape with the selected dataset.
// Shapes of 1–3 dimensions are supported.
func Generate(kind Kind, seed int64, shape ...int) (*grid.Field, error) {
	if len(shape) < 1 || len(shape) > 3 {
		return nil, fmt.Errorf("%w: %v (want 1-3 dims)", ErrShape, shape)
	}
	f, err := grid.New(shape...)
	if err != nil {
		return nil, err
	}
	// Normalize to 3D extents for the generators.
	ext := [3]int{1, 1, 1}
	copy(ext[:], shape)
	rng := rand.New(rand.NewSource(seed))
	switch kind {
	case Smooth:
		fillSmooth(f, ext, rng)
	case Turbulent:
		fillTurbulent(f, ext, rng)
	case Shock:
		fillSmooth(f, ext, rng)
		addShock(f, ext)
	case Noise:
		for i := range f.Data() {
			f.Data()[i] = rng.NormFloat64() * 10
		}
	case Mixed:
		fillSmooth(f, ext, rng)
		addOutliers(f, rng)
	default:
		return nil, fmt.Errorf("synth: unknown kind %d", int(kind))
	}
	return f, nil
}

func forEach3D(ext [3]int, fn func(off, i, j, k int)) {
	off := 0
	for i := 0; i < ext[0]; i++ {
		for j := 0; j < ext[1]; j++ {
			for k := 0; k < ext[2]; k++ {
				fn(off, i, j, k)
				off++
			}
		}
	}
}

func fillSmooth(f *grid.Field, ext [3]int, rng *rand.Rand) {
	p1 := rng.Float64() * 2 * math.Pi
	p2 := rng.Float64() * 2 * math.Pi
	d := f.Data()
	forEach3D(ext, func(off, i, j, k int) {
		x := 2 * math.Pi * float64(i) / float64(ext[0])
		y := 2 * math.Pi * float64(j) / float64(max(ext[1], 1))
		z := float64(k) / float64(max(ext[2], 1))
		d[off] = 500 + 80*math.Sin(x+p1) + 30*math.Cos(2*y+p2) + 10*z
	})
}

// fillTurbulent superposes octave modes with amplitude ~ k^(-5/6)
// (so energy ~ k^(-5/3)).
func fillTurbulent(f *grid.Field, ext [3]int, rng *rand.Rand) {
	type mode struct {
		kx, ky float64
		amp    float64
		phase  float64
	}
	var modes []mode
	for octave := 1; octave <= 6; octave++ {
		kBase := float64(int(1) << uint(octave))
		for m := 0; m < 4; m++ {
			k := kBase * (1 + rng.Float64())
			modes = append(modes, mode{
				kx:    k * math.Cos(rng.Float64()*2*math.Pi),
				ky:    k * math.Sin(rng.Float64()*2*math.Pi),
				amp:   40 * math.Pow(k, -5.0/6.0),
				phase: rng.Float64() * 2 * math.Pi,
			})
		}
	}
	d := f.Data()
	forEach3D(ext, func(off, i, j, k int) {
		x := float64(i) / float64(ext[0])
		y := float64(j) / float64(max(ext[1], 1))
		v := 100.0
		for _, md := range modes {
			v += md.amp * math.Sin(2*math.Pi*(md.kx*x+md.ky*y)+md.phase)
		}
		d[off] = v + 0.5*float64(k)
	})
}

// addShock superimposes a sharp tanh front across the first axis.
func addShock(f *grid.Field, ext [3]int) {
	d := f.Data()
	mid := float64(ext[0]) / 2
	forEach3D(ext, func(off, i, j, k int) {
		d[off] += 200 * math.Tanh(5*(float64(i)-mid))
	})
}

// addOutliers replaces ~0.5% of values with large excursions.
func addOutliers(f *grid.Field, rng *rand.Rand) {
	d := f.Data()
	n := len(d) / 200
	for k := 0; k < n; k++ {
		d[rng.Intn(len(d))] += rng.NormFloat64() * 5000
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
