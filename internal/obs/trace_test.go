package obs

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

// TestEventRingWraparound: past capacity the ring keeps the newest
// events, counts drops, and snapshots oldest-first in order.
func TestEventRingWraparound(t *testing.T) {
	r := NewRegistry()
	const total = DefaultEventCap + 100
	for i := 0; i < total; i++ {
		r.Event("tick", "i", i)
	}
	events, dropped := r.Events()
	if len(events) != DefaultEventCap {
		t.Fatalf("retained %d events, want %d", len(events), DefaultEventCap)
	}
	if dropped != 100 {
		t.Fatalf("dropped = %d, want 100", dropped)
	}
	// Oldest retained must be event #100, newest #total-1, strictly ordered.
	for k, ev := range events {
		want := fmt.Sprint(100 + k)
		if len(ev.Attrs) != 2 || ev.Attrs[1] != want {
			t.Fatalf("event %d: attrs %v, want i=%s", k, ev.Attrs, want)
		}
	}
}

// TestEventRingConcurrent: concurrent event emission never loses count
// coherence (retained + dropped == emitted). Run under -race.
func TestEventRingConcurrent(t *testing.T) {
	r := NewRegistry()
	const goroutines, per = 16, 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Event("concurrent", "g", g, "i", i)
			}
		}(g)
	}
	wg.Wait()
	events, dropped := r.Events()
	if got := uint64(len(events)) + dropped; got != goroutines*per {
		t.Fatalf("retained+dropped = %d, want %d", got, goroutines*per)
	}
}

// TestConcurrentSpans: spans ended from many goroutines record one
// completion event and one histogram observation each, with the error
// split intact. Run under -race.
func TestConcurrentSpans(t *testing.T) {
	r := NewRegistry()
	const n = 64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sp := r.StartSpan("op", "worker", i)
			if i%4 == 0 {
				sp.EndErr(errors.New("boom"))
			} else {
				sp.End()
			}
		}(i)
	}
	wg.Wait()
	if got := r.Counter("op_total").Value(); got != n {
		t.Fatalf("op_total = %v, want %d", got, n)
	}
	if got := r.Counter("op_errors_total").Value(); got != n/4 {
		t.Fatalf("op_errors_total = %v, want %d", got, n/4)
	}
	events, dropped := r.Events()
	if got := uint64(len(events)) + dropped; got != n {
		t.Fatalf("span events = %d, want %d", got, n)
	}
}

// TestSeriesCardinalityCap: unbounded label values stop registering at
// the cap; overflow becomes a no-op instrument and is counted in
// obs_dropped_series_total. Existing series keep working.
func TestSeriesCardinalityCap(t *testing.T) {
	r := NewRegistry()
	r.SetSeriesCap(8)
	for i := 0; i < 20; i++ {
		r.Gauge("quality_psnr", "var", fmt.Sprint(i)).Set(float64(i))
	}
	// The first 8 registered and still update.
	g := r.Gauge("quality_psnr", "var", "0")
	g.Set(42)
	if got := g.Value(); got != 42 {
		t.Fatalf("existing series broken: %v", got)
	}
	// Overflow series are inert.
	over := r.Gauge("quality_psnr", "var", "19")
	over.Set(7)
	if got := over.Value(); got != 0 {
		t.Fatalf("overflow series recorded a value: %v", got)
	}
	// Every refused lookup counts: 12 overflow registrations in the loop
	// plus the re-lookup of var "19" above.
	if got := r.Counter(MetricDroppedSeries, "metric", "quality_psnr").Value(); got != 13 {
		t.Fatalf("dropped series counter = %v, want 13", got)
	}
	// Other metric names are unaffected by this name's overflow.
	r.Counter("unrelated_total").Inc()
	if got := r.Counter("unrelated_total").Value(); got != 1 {
		t.Fatalf("unrelated metric affected: %v", got)
	}
}

// TestSeriesCapConcurrent: racing registrations across the cap stay
// bounded and coherent. Run under -race.
func TestSeriesCapConcurrent(t *testing.T) {
	r := NewRegistry()
	r.SetSeriesCap(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				r.Gauge("racy", "v", fmt.Sprintf("%d-%d", g, i)).Set(1)
			}
		}(g)
	}
	wg.Wait()
	live := 0
	var dropped float64
	for i := 0; i < 8; i++ {
		for j := 0; j < 50; j++ {
			if r.Gauge("racy", "v", fmt.Sprintf("%d-%d", i, j)).Value() == 1 {
				live++
			}
		}
	}
	dropped = r.Counter(MetricDroppedSeries, "metric", "racy").Value()
	if live > 16 {
		t.Fatalf("live series %d exceeds cap 16", live)
	}
	if dropped == 0 {
		t.Fatal("no drops counted despite overflow")
	}
}
