// Package obs is the repository's zero-dependency observability layer:
// counters, gauges and bounded histograms with atomic fast paths, plus a
// bounded ring of lightweight span events for store/restore tracing.
//
// The paper's whole evaluation is a measurement story — per-stage cost
// breakdown (Fig. 9), compression rate (Figs. 6–7) and error against the
// checkpoint interval (Figs. 8, 10) — and Z-checker (Tao et al., IJHPCA
// 2017) argues that lossy compressors need a standing assessment
// framework for exactly these rate/error metrics rather than ad-hoc
// prints. Package obs is that framework for this repo: every pipeline
// stage, store commit, restore fallback and quality measurement records
// into a Registry, which exposes itself as Prometheus text, a JSON
// snapshot, and a human summary table (see expose.go and http.go).
//
// Concurrency: all recording paths are lock-free after the first
// registration of a metric (atomic adds on shared cells); registration
// itself takes a short mutex and is safe from any number of goroutines.
// Every method is nil-safe — a nil *Registry and the zero instrument
// values are no-ops — so instrumented code needs no conditionals and a
// disabled observer costs one branch per record.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Registry holds a set of named metrics and an event ring. The zero value
// is not usable; call NewRegistry. A nil *Registry is a valid no-op
// observer: every method on it (and on the instruments it returns) does
// nothing.
type Registry struct {
	mu      sync.RWMutex
	metrics map[string]*metric
	help    map[string]string
	// perName counts distinct label sets per metric name so one
	// unbounded label value (a per-variable gauge fed hostile names)
	// cannot grow the registry without limit. seriesCap 0 means
	// DefaultSeriesCap.
	perName   map[string]int
	seriesCap int

	events eventRing
	start  time.Time
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		metrics: make(map[string]*metric),
		help:    make(map[string]string),
		perName: make(map[string]int),
		events:  eventRing{cap: DefaultEventCap},
		start:   time.Now(),
	}
}

// defaultReg is the process-wide fallback observer. It defaults to nil
// (no-op); front ends that want whole-process recording without threading
// a Registry through every call site install one with SetDefault.
var defaultReg atomic.Pointer[Registry]

// Default returns the process-wide default registry, or nil when none is
// installed. Instrumented packages fall back to it when no explicit
// observer was configured.
func Default() *Registry { return defaultReg.Load() }

// SetDefault installs r as the process-wide default registry and returns
// the previous one (nil uninstalls). Callers that install a scoped
// default should restore the returned registry when done.
func SetDefault(r *Registry) (prev *Registry) {
	return defaultReg.Swap(r)
}

// metricKind discriminates the metric representations.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "unknown"
}

// DefaultSeriesCap bounds distinct label sets per metric name unless
// overridden with SetSeriesCap: enough for every real workload here
// (per-variable gauges over a few dozen variables), small enough that a
// label fed from unbounded input cannot exhaust memory.
const DefaultSeriesCap = 1024

// MetricDroppedSeries counts series registrations refused by the
// cardinality cap, labeled metric=<name>.
const MetricDroppedSeries = "obs_dropped_series_total"

// metric is one registered time series: a name, its label pairs and the
// atomic cells the instruments mutate. Counters and gauges share the
// float64-bits representation; histograms add bucket counters.
type metric struct {
	name   string
	labels []string // alternating key, value; sorted by key
	kind   metricKind

	bits atomic.Uint64 // counter/gauge value as math.Float64bits

	bounds  []float64 // histogram upper bounds, ascending; +Inf implicit
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// addFloat atomically adds v to a float64-bits cell.
func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// key builds the canonical map key "name{k1=v1,k2=v2}" from sorted label
// pairs. Labels must come in pairs; a trailing odd key gets an empty
// value rather than panicking in a hot path.
func key(name string, labels []string) string {
	if len(labels) == 0 {
		return name
	}
	n := len(name) + 2
	for _, l := range labels {
		n += len(l) + 2
	}
	b := make([]byte, 0, n)
	b = append(b, name...)
	b = append(b, '{')
	for i := 0; i < len(labels); i += 2 {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, labels[i]...)
		b = append(b, '=')
		if i+1 < len(labels) {
			b = append(b, labels[i+1]...)
		}
	}
	b = append(b, '}')
	return string(b)
}

// sortLabels returns the label pairs sorted by key so that differently
// ordered call sites share one time series. The common cases (no labels,
// one pair) return the input unchanged without allocating.
func sortLabels(labels []string) []string {
	if len(labels) <= 2 {
		return labels
	}
	pairs := make([][2]string, 0, len(labels)/2)
	for i := 0; i+1 < len(labels); i += 2 {
		pairs = append(pairs, [2]string{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i][0] < pairs[j][0] })
	out := make([]string, 0, 2*len(pairs))
	for _, p := range pairs {
		out = append(out, p[0], p[1])
	}
	return out
}

// lookup returns the metric registered under name+labels, creating it on
// first use. Creation validates kind agreement: re-registering a name
// with a different kind returns nil (recorded into obs_kind_conflicts so
// the bug is visible without panicking a production path).
func (r *Registry) lookup(name string, labels []string, kind metricKind, bounds []float64) *metric {
	if r == nil {
		return nil
	}
	labels = sortLabels(labels)
	k := key(name, labels)

	r.mu.RLock()
	m := r.metrics[k]
	r.mu.RUnlock()
	if m != nil {
		if m.kind != kind {
			return nil
		}
		return m
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	if m = r.metrics[k]; m != nil {
		if m.kind != kind {
			return nil
		}
		return m
	}
	cap := r.seriesCap
	if cap <= 0 {
		cap = DefaultSeriesCap
	}
	if name != MetricDroppedSeries && r.perName[name] >= cap {
		r.dropSeriesLocked(name)
		return nil // instruments on a nil metric are no-ops
	}
	m = &metric{
		name:   name,
		labels: append([]string(nil), labels...),
		kind:   kind,
	}
	if kind == kindHistogram {
		m.bounds = append([]float64(nil), bounds...)
		m.buckets = make([]atomic.Uint64, len(bounds)+1)
	}
	r.metrics[k] = m
	r.perName[name]++
	return m
}

// SetSeriesCap bounds the number of distinct label sets any one metric
// name may register (0 restores DefaultSeriesCap). Existing series are
// kept; new ones beyond the cap become no-ops and are counted in
// MetricDroppedSeries.
func (r *Registry) SetSeriesCap(n int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.seriesCap = n
	r.mu.Unlock()
}

// dropSeriesLocked counts one refused series registration. It creates
// the drop counter inline because r.mu is already held.
func (r *Registry) dropSeriesLocked(name string) {
	k := key(MetricDroppedSeries, []string{"metric", name})
	m := r.metrics[k]
	if m == nil {
		m = &metric{
			name:   MetricDroppedSeries,
			labels: []string{"metric", name},
			kind:   kindCounter,
		}
		r.metrics[k] = m
	}
	addFloat(&m.bits, 1)
}

// SetHelp registers the HELP text emitted for a metric name in the
// Prometheus exposition.
func (r *Registry) SetHelp(name, text string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.help[name] = text
	r.mu.Unlock()
}

// --- Counter ----------------------------------------------------------------

// Counter is a monotonically increasing metric. The zero value is a
// no-op.
type Counter struct{ m *metric }

// Counter returns the counter registered under name and the alternating
// key/value label pairs, creating it on first use.
func (r *Registry) Counter(name string, labels ...string) Counter {
	return Counter{m: r.lookup(name, labels, kindCounter, nil)}
}

// Add increases the counter by v; negative and NaN values are ignored
// (counters are monotone).
func (c Counter) Add(v float64) {
	if c.m == nil || !(v > 0) {
		return
	}
	addFloat(&c.m.bits, v)
}

// Inc adds one.
func (c Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c Counter) Value() float64 {
	if c.m == nil {
		return 0
	}
	return math.Float64frombits(c.m.bits.Load())
}

// --- Gauge ------------------------------------------------------------------

// Gauge is a metric that can go up and down. The zero value is a no-op.
type Gauge struct{ m *metric }

// Gauge returns the gauge registered under name+labels, creating it on
// first use.
func (r *Registry) Gauge(name string, labels ...string) Gauge {
	return Gauge{m: r.lookup(name, labels, kindGauge, nil)}
}

// Set stores v. NaN and ±Inf are ignored so a degenerate measurement
// cannot poison the exposition.
func (g Gauge) Set(v float64) {
	if g.m == nil || math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	g.m.bits.Store(math.Float64bits(v))
}

// Add adjusts the gauge by v.
func (g Gauge) Add(v float64) {
	if g.m == nil || math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	addFloat(&g.m.bits, v)
}

// Value returns the current value.
func (g Gauge) Value() float64 {
	if g.m == nil {
		return 0
	}
	return math.Float64frombits(g.m.bits.Load())
}

// --- Histogram --------------------------------------------------------------

// Histogram is a bounded-bucket distribution (cumulative buckets in the
// Prometheus sense). The zero value is a no-op.
type Histogram struct{ m *metric }

// DurationBuckets are the default upper bounds (seconds) for operation
// latencies: 100 µs to 30 s, roughly ×3 per step — wide enough for both
// a slab compression and a paper-scale checkpoint.
var DurationBuckets = []float64{
	0.0001, 0.0003, 0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1, 3, 10, 30,
}

// SizeBuckets are the default upper bounds (bytes) for payload sizes:
// 1 KiB to 1 GiB, ×4 per step.
var SizeBuckets = []float64{
	1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10,
	1 << 20, 4 << 20, 16 << 20, 64 << 20, 256 << 20, 1 << 30,
}

// Histogram returns the histogram registered under name+labels, creating
// it on first use with the given ascending upper bounds (the +Inf bucket
// is implicit). Later calls for an existing series ignore bounds.
func (r *Registry) Histogram(name string, bounds []float64, labels ...string) Histogram {
	return Histogram{m: r.lookup(name, labels, kindHistogram, bounds)}
}

// Observe records one value. NaN is ignored.
func (h Histogram) Observe(v float64) {
	if h.m == nil || math.IsNaN(v) {
		return
	}
	// Buckets are few (≤ ~12); linear scan beats binary search here.
	i := 0
	for i < len(h.m.bounds) && v > h.m.bounds[i] {
		i++
	}
	h.m.buckets[i].Add(1)
	h.m.count.Add(1)
	addFloat(&h.m.sumBits, v)
}

// ObserveDuration records d in seconds.
func (h Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h Histogram) Count() uint64 {
	if h.m == nil {
		return 0
	}
	return h.m.count.Load()
}

// Sum returns the sum of observed values.
func (h Histogram) Sum() float64 {
	if h.m == nil {
		return 0
	}
	return math.Float64frombits(h.m.sumBits.Load())
}
