package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strings"
	"testing"
)

// promLine matches one Prometheus text-format sample line.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (NaN|[+-]?Inf|[-+]?[0-9.eE+-]+)$`)

func populated() *Registry {
	r := NewRegistry()
	r.SetHelp("lossyckpt_demo_total", "demo counter")
	r.Counter("lossyckpt_demo_total", "kind", "single").Add(3)
	r.Counter("lossyckpt_demo_total", "kind", "chunked").Add(1)
	r.Gauge("lossyckpt_quality_psnr_db", "var", `tricky"name\`).Set(74.5)
	h := r.Histogram("lossyckpt_compress_wall_seconds", DurationBuckets)
	h.Observe(0.002)
	h.Observe(0.2)
	r.Event("store.commit", "gen", "1", "bytes", "4096")
	return r
}

func TestWritePrometheusParseable(t *testing.T) {
	var sb strings.Builder
	if err := populated().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	sc := bufio.NewScanner(strings.NewReader(out))
	samples := 0
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("unparseable sample line: %q", line)
		}
		samples++
	}
	if samples == 0 {
		t.Fatal("no samples emitted")
	}
	for _, want := range []string{
		"# TYPE lossyckpt_demo_total counter",
		"# HELP lossyckpt_demo_total demo counter",
		`lossyckpt_demo_total{kind="single"} 3`,
		"# TYPE lossyckpt_compress_wall_seconds histogram",
		`lossyckpt_compress_wall_seconds_bucket{le="+Inf"} 2`,
		"lossyckpt_compress_wall_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	// The escaped label value must round-trip the quote and backslash.
	if !strings.Contains(out, `var="tricky\"name\\"`) {
		t.Errorf("label escaping wrong:\n%s", out)
	}
	// TYPE lines must not repeat per labeled series.
	if strings.Count(out, "# TYPE lossyckpt_demo_total") != 1 {
		t.Error("duplicate TYPE line for labeled series")
	}
}

func TestJSONSnapshotRoundTrips(t *testing.T) {
	var sb strings.Builder
	if err := populated().WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var snap map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	metrics, ok := snap["metrics"].([]any)
	if !ok || len(metrics) == 0 {
		t.Fatal("snapshot has no metrics array")
	}
	if _, ok := snap["events"].([]any); !ok {
		t.Error("snapshot has no events array")
	}
}

func TestWriteSummaryTable(t *testing.T) {
	var sb strings.Builder
	if err := populated().WriteSummary(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"metric", "lossyckpt_demo_total", "count=2", "events"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
	// Empty registry → no output at all.
	var empty strings.Builder
	if err := NewRegistry().WriteSummary(&empty); err != nil {
		t.Fatal(err)
	}
	if empty.Len() != 0 {
		t.Errorf("empty registry produced output: %q", empty.String())
	}
}

func TestServeEndpoints(t *testing.T) {
	r := populated()
	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	if out := get("/metrics"); !strings.Contains(out, "lossyckpt_demo_total") {
		t.Errorf("/metrics missing counter:\n%s", out)
	}
	if out := get("/metrics.json"); !strings.Contains(out, `"metrics"`) {
		t.Errorf("/metrics.json not a snapshot:\n%s", out)
	}
	if out := get("/summary"); !strings.Contains(out, "metric") {
		t.Errorf("/summary empty:\n%s", out)
	}
	if out := get("/debug/pprof/cmdline"); len(out) == 0 {
		t.Error("/debug/pprof/cmdline empty")
	}
	if out := get("/"); !strings.Contains(out, "/metrics") {
		t.Errorf("index missing endpoint list:\n%s", out)
	}
}
