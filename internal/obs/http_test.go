package obs

import (
	"context"
	"fmt"
	"net/http"
	"testing"
	"time"
)

func get(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

func TestServeReadyzAndShutdown(t *testing.T) {
	reg := NewRegistry()
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + srv.Addr()
	if code := get(t, base+"/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz = %d", code)
	}
	if code := get(t, base+"/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz = %d, want 200 at start", code)
	}
	if code := get(t, base+"/metrics"); code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}

	// Drain: readiness flips, liveness stays green.
	srv.SetReady(false)
	if code := get(t, base+"/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while draining = %d, want 503", code)
	}
	if code := get(t, base+"/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz while draining = %d, want 200", code)
	}
	srv.SetReady(true)
	if code := get(t, base+"/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz after un-drain = %d", code)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if srv.Ready() {
		t.Fatal("server still ready after Shutdown")
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("listener still accepting after Shutdown")
	}
}

func TestServeHandlerMountsReadyzNextToCustomAPI(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/ping", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "pong")
	})
	srv, err := ServeHandler("127.0.0.1:0", mux)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()
	if code := get(t, base+"/v1/ping"); code != http.StatusOK {
		t.Fatalf("/v1/ping = %d", code)
	}
	if code := get(t, base+"/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz = %d", code)
	}
}
