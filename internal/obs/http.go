package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"runtime/debug"
	"sync/atomic"
	"time"
)

// Handler returns the registry's HTTP surface:
//
//	/metrics        Prometheus text exposition
//	/metrics.json   full JSON snapshot (metrics + trace events)
//	/summary        the human end-of-run table
//	/debug/pprof/…  net/http/pprof profiles
//	/               a plain-text index of the above
//
// Safe to serve while recording continues; every page renders a fresh
// snapshot.
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteJSON(w)
	})
	mux.HandleFunc("/summary", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = r.WriteSummary(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/buildinfo", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = writeBuildInfo(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "lossyckpt observability endpoints:")
		fmt.Fprintln(w, "  /metrics       Prometheus text format")
		fmt.Fprintln(w, "  /metrics.json  JSON snapshot (metrics + events)")
		fmt.Fprintln(w, "  /summary       human summary table")
		fmt.Fprintln(w, "  /healthz       liveness probe")
		fmt.Fprintln(w, "  /readyz        readiness probe (503 while draining)")
		fmt.Fprintln(w, "  /buildinfo     build and runtime facts (JSON)")
		fmt.Fprintln(w, "  /debug/pprof/  Go runtime profiles")
	})
	return mux
}

// writeBuildInfo renders a small JSON document of build and runtime
// facts: module version and VCS stamp when the binary carries them,
// plus Go version, GOMAXPROCS and coarse memory counters.
func writeBuildInfo(w io.Writer) error {
	type buildInfo struct {
		GoVersion  string            `json:"go_version"`
		Path       string            `json:"path,omitempty"`
		Version    string            `json:"version,omitempty"`
		Settings   map[string]string `json:"settings,omitempty"`
		GOMAXPROCS int               `json:"gomaxprocs"`
		NumGC      uint32            `json:"num_gc"`
		HeapBytes  uint64            `json:"heap_bytes"`
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	bi := buildInfo{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumGC:      ms.NumGC,
		HeapBytes:  ms.HeapAlloc,
	}
	if info, ok := debug.ReadBuildInfo(); ok {
		bi.Path = info.Main.Path
		bi.Version = info.Main.Version
		for _, s := range info.Settings {
			switch s.Key {
			case "vcs.revision", "vcs.time", "vcs.modified", "GOARCH", "GOOS":
				if bi.Settings == nil {
					bi.Settings = map[string]string{}
				}
				bi.Settings[s.Key] = s.Value
			}
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(bi)
}

// Server is a running metrics listener.
type Server struct {
	ln  net.Listener
	srv *http.Server
	// ready backs /readyz: true from start, flipped false by SetReady or
	// Shutdown so load balancers stop routing while /healthz still
	// answers 200 (the process is alive, just draining).
	ready atomic.Bool
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// SetReady flips the /readyz probe: false answers 503 (draining, stop
// routing new work here), true answers 200. Liveness (/healthz) is
// unaffected.
func (s *Server) SetReady(ready bool) {
	if s == nil {
		return
	}
	s.ready.Store(ready)
}

// Ready reports the current /readyz state.
func (s *Server) Ready() bool {
	if s == nil {
		return false
	}
	return s.ready.Load()
}

// Close stops the listener. In-flight requests get a short grace period.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	s.ready.Store(false)
	s.srv.SetKeepAlivesEnabled(false)
	return s.srv.Close()
}

// Shutdown drains the server gracefully: /readyz flips to 503
// immediately, keep-alives stop, and in-flight requests run to
// completion or until ctx expires (then they are cut off, as
// http.Server.Shutdown's contract).
func (s *Server) Shutdown(ctx context.Context) error {
	if s == nil {
		return nil
	}
	s.ready.Store(false)
	s.srv.SetKeepAlivesEnabled(false)
	return s.srv.Shutdown(ctx)
}

// Serve starts an HTTP listener on addr serving r.Handler() plus a
// /readyz readiness probe in a background goroutine and returns
// immediately. Use ":0" to bind an ephemeral port and read it back from
// Server.Addr. The server starts ready; SetReady(false) or Shutdown
// flip /readyz to 503.
func Serve(addr string, r *Registry) (*Server, error) {
	return ServeHandler(addr, r.Handler())
}

// ServeHandler is Serve for callers that bring their own handler (the
// checkpoint daemon mounts its API next to the registry surface); the
// /readyz probe is layered on top either way.
func ServeHandler(addr string, h http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln}
	s.ready.Store(true)
	mux := http.NewServeMux()
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if !s.ready.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "draining")
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.Handle("/", h)
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}
