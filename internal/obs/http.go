package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler returns the registry's HTTP surface:
//
//	/metrics        Prometheus text exposition
//	/metrics.json   full JSON snapshot (metrics + trace events)
//	/summary        the human end-of-run table
//	/debug/pprof/…  net/http/pprof profiles
//	/               a plain-text index of the above
//
// Safe to serve while recording continues; every page renders a fresh
// snapshot.
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteJSON(w)
	})
	mux.HandleFunc("/summary", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = r.WriteSummary(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "lossyckpt observability endpoints:")
		fmt.Fprintln(w, "  /metrics       Prometheus text format")
		fmt.Fprintln(w, "  /metrics.json  JSON snapshot (metrics + events)")
		fmt.Fprintln(w, "  /summary       human summary table")
		fmt.Fprintln(w, "  /debug/pprof/  Go runtime profiles")
	})
	return mux
}

// Server is a running metrics listener.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener. In-flight requests get a short grace period.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	s.srv.SetKeepAlivesEnabled(false)
	return s.srv.Close()
}

// Serve starts an HTTP listener on addr serving r.Handler() in a
// background goroutine and returns immediately. Use ":0" to bind an
// ephemeral port and read it back from Server.Addr.
func Serve(addr string, r *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: r.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return &Server{ln: ln, srv: srv}, nil
}
