package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"
)

// MetricSnapshot is one time series frozen at snapshot time.
type MetricSnapshot struct {
	Name   string            `json:"name"`
	Kind   string            `json:"kind"`
	Labels map[string]string `json:"labels,omitempty"`
	// Value is the counter/gauge value (absent for histograms).
	Value float64 `json:"value,omitempty"`
	// Count/Sum/Buckets describe histograms. Buckets are cumulative
	// counts per upper bound, Prometheus-style; the final entry is +Inf.
	Count   uint64           `json:"count,omitempty"`
	Sum     float64          `json:"sum,omitempty"`
	Buckets []BucketSnapshot `json:"buckets,omitempty"`
}

// BucketSnapshot is one cumulative histogram bucket.
type BucketSnapshot struct {
	LE    float64 `json:"le"` // +Inf encoded as JSON string "+Inf" via MarshalJSON
	Count uint64  `json:"count"`
}

// MarshalJSON renders +Inf (not representable in JSON numbers) as a
// string; finite bounds stay numeric.
func (b BucketSnapshot) MarshalJSON() ([]byte, error) {
	le := "\"+Inf\""
	if !math.IsInf(b.LE, 1) {
		le = strconv.FormatFloat(b.LE, 'g', -1, 64)
	}
	return []byte(fmt.Sprintf(`{"le":%s,"count":%d}`, le, b.Count)), nil
}

// EventSnapshot is one trace event in a snapshot.
type EventSnapshot struct {
	Time  time.Time         `json:"time"`
	Name  string            `json:"name"`
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Snapshot is a point-in-time copy of the registry, the unit both the
// JSON exposition and the summary table render.
type Snapshot struct {
	Start         time.Time        `json:"start"`
	Taken         time.Time        `json:"taken"`
	Metrics       []MetricSnapshot `json:"metrics"`
	Events        []EventSnapshot  `json:"events,omitempty"`
	DroppedEvents uint64           `json:"dropped_events,omitempty"`
}

// Snapshot freezes the registry. Metrics are sorted by name then label
// string, so output is deterministic. A nil registry yields an empty
// snapshot.
func (r *Registry) Snapshot() *Snapshot {
	snap := &Snapshot{Taken: time.Now()}
	if r == nil {
		return snap
	}
	snap.Start = r.start

	r.mu.RLock()
	ms := make([]*metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		ms = append(ms, m)
	}
	r.mu.RUnlock()

	sort.Slice(ms, func(i, j int) bool {
		if ms[i].name != ms[j].name {
			return ms[i].name < ms[j].name
		}
		return key("", ms[i].labels) < key("", ms[j].labels)
	})
	for _, m := range ms {
		s := MetricSnapshot{Name: m.name, Kind: m.kind.String()}
		if len(m.labels) > 0 {
			s.Labels = make(map[string]string, len(m.labels)/2)
			for i := 0; i+1 < len(m.labels); i += 2 {
				s.Labels[m.labels[i]] = m.labels[i+1]
			}
		}
		switch m.kind {
		case kindCounter, kindGauge:
			s.Value = math.Float64frombits(m.bits.Load())
		case kindHistogram:
			s.Count = m.count.Load()
			s.Sum = math.Float64frombits(m.sumBits.Load())
			var cum uint64
			for i := range m.buckets {
				cum += m.buckets[i].Load()
				le := math.Inf(1)
				if i < len(m.bounds) {
					le = m.bounds[i]
				}
				s.Buckets = append(s.Buckets, BucketSnapshot{LE: le, Count: cum})
			}
		}
		snap.Metrics = append(snap.Metrics, s)
	}

	events, dropped := r.events.snapshot()
	snap.DroppedEvents = dropped
	for _, ev := range events {
		es := EventSnapshot{Time: ev.Time, Name: ev.Name}
		if len(ev.Attrs) > 0 {
			es.Attrs = make(map[string]string, len(ev.Attrs)/2)
			for i := 0; i+1 < len(ev.Attrs); i += 2 {
				es.Attrs[ev.Attrs[i]] = ev.Attrs[i+1]
			}
		}
		snap.Events = append(snap.Events, es)
	}
	return snap
}

// WriteJSON writes the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// --- Prometheus text exposition ---------------------------------------------

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// formatValue renders a sample value; Prometheus accepts +Inf/-Inf/NaN
// spellings.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promLabels renders `{k="v",...}` from a snapshot's label map plus an
// optional extra pair (used for the histogram `le` label). Keys are
// sorted; an empty set renders as "".
func promLabels(labels map[string]string, extraKey, extraVal string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	keys := make([]string, 0, len(labels)+1)
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, k, escapeLabel(labels[k]))
	}
	if extraKey != "" {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, extraKey, extraVal)
	}
	b.WriteByte('}')
	return b.String()
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4): one # TYPE (and # HELP if registered) line per
// metric name, histograms expanded into cumulative _bucket/_sum/_count
// series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()
	var helps map[string]string
	if r != nil {
		r.mu.RLock()
		helps = make(map[string]string, len(r.help))
		for k, v := range r.help {
			helps[k] = v
		}
		r.mu.RUnlock()
	}

	seenType := make(map[string]bool)
	for _, m := range snap.Metrics {
		if !seenType[m.Name] {
			seenType[m.Name] = true
			if h := helps[m.Name]; h != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.Name, strings.ReplaceAll(h, "\n", " ")); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.Name, m.Kind); err != nil {
				return err
			}
		}
		switch m.Kind {
		case "counter", "gauge":
			if _, err := fmt.Fprintf(w, "%s%s %s\n", m.Name, promLabels(m.Labels, "", ""), formatValue(m.Value)); err != nil {
				return err
			}
		case "histogram":
			for _, b := range m.Buckets {
				le := "+Inf"
				if !math.IsInf(b.LE, 1) {
					le = strconv.FormatFloat(b.LE, 'g', -1, 64)
				}
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", m.Name, promLabels(m.Labels, "le", le), b.Count); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", m.Name, promLabels(m.Labels, "", ""), formatValue(m.Sum)); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", m.Name, promLabels(m.Labels, "", ""), m.Count); err != nil {
				return err
			}
		}
	}
	return nil
}

// --- Human summary ----------------------------------------------------------

// WriteSummary renders the registry as an aligned end-of-run table:
// counters and gauges as name/value rows, histograms as count/mean/sum.
// It writes nothing (and returns nil) when the registry is nil or empty,
// so callers can emit it unconditionally.
func (r *Registry) WriteSummary(w io.Writer) error {
	snap := r.Snapshot()
	if len(snap.Metrics) == 0 {
		return nil
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "metric\tvalue\n")
	for _, m := range snap.Metrics {
		id := m.Name + promLabels(m.Labels, "", "")
		switch m.Kind {
		case "counter", "gauge":
			fmt.Fprintf(tw, "%s\t%s\n", id, formatValue(m.Value))
		case "histogram":
			mean := math.NaN()
			if m.Count > 0 {
				mean = m.Sum / float64(m.Count)
			}
			fmt.Fprintf(tw, "%s\tcount=%d sum=%s mean=%s\n", id, m.Count, formatValue(m.Sum), formatValue(mean))
		}
	}
	if n := len(snap.Events); n > 0 {
		fmt.Fprintf(tw, "events\t%d retained (%d dropped)\n", n, snap.DroppedEvents)
	}
	return tw.Flush()
}
