// reader.go replays a journal: torn-tail-tolerant JSONL decoding over
// the rotation ring, plus per-operation state reconstruction so a
// kill-mid-checkpoint run can be analyzed from the journal alone.
package journal

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// ReadFile decodes one JSONL journal file. A torn final line — the
// signature of a process killed mid-append — is dropped and reported
// via torn, never an error: a crash must not poison replay of the
// records before it. A malformed line anywhere else is a real error.
func ReadFile(path string) (recs []Record, torn bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false, err
	}
	defer f.Close()

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 8<<20)
	var pendingErr error
	pendingLine := -1
	for line := 1; sc.Scan(); line++ {
		b := bytes.TrimSpace(sc.Bytes())
		if len(b) == 0 {
			continue
		}
		if pendingErr != nil {
			// A bad line followed by more data is corruption, not a torn
			// tail.
			return nil, false, fmt.Errorf("journal: %s:%d: %w", path, pendingLine, pendingErr)
		}
		var r Record
		if err := json.Unmarshal(b, &r); err != nil {
			pendingErr = err
			pendingLine = line
			continue
		}
		recs = append(recs, r)
	}
	if err := sc.Err(); err != nil {
		return nil, false, fmt.Errorf("journal: %s: %w", path, err)
	}
	if pendingErr != nil {
		torn = true
	}
	return recs, torn, nil
}

// ReadAll decodes a whole rotation ring oldest-first. Only the active
// (last) file may legitimately have a torn tail; rotated files were
// closed cleanly, so a torn rotated file is still tolerated but
// flagged.
func ReadAll(path string) (recs []Record, torn bool, err error) {
	files := RotatedSet(path, 0)
	if len(files) == 0 {
		return nil, false, fmt.Errorf("journal: no files at %s", path)
	}
	for _, p := range files {
		r, t, err := ReadFile(p)
		if err != nil {
			return nil, false, err
		}
		recs = append(recs, r...)
		torn = torn || t
	}
	return recs, torn, nil
}

// OpState is one operation reconstructed from its begin / progress /
// end records — the unit of post-mortem replay.
type OpState struct {
	ID       string
	Parent   string
	Op       string
	Step     int
	Seq      uint64
	Complete bool // an end record was found
	Err      string
	Seconds  float64
	// LastStage is the furthest stage a progress record reached; for
	// complete ops the stage waterfall in Stages supersedes it.
	LastStage string
	// LastBytes is the byte watermark of the latest progress record.
	LastBytes int64
	BytesIn   int64
	BytesOut  int64
	Stages    map[string]float64
	Entries   []Entry
	Votes     []Vote
	Attrs     map[string]string
	Children  []*OpState
	Notes     []Record
}

// Replay folds a record stream into per-operation state, linking
// children and notes to their parents. The returned slice holds the
// root operations (no parent, or parent unseen) in first-appearance
// order.
func Replay(recs []Record) []*OpState {
	byID := map[string]*OpState{}
	var order []string
	get := func(r *Record) *OpState {
		st, ok := byID[r.ID]
		if !ok {
			st = &OpState{ID: r.ID, Parent: r.Parent, Op: r.Op}
			byID[r.ID] = st
			order = append(order, r.ID)
		}
		return st
	}
	for i := range recs {
		r := &recs[i]
		switch r.Phase {
		case "begin":
			st := get(r)
			if st.Attrs == nil {
				st.Attrs = r.Attrs
			}
		case "progress":
			st := get(r)
			st.LastStage = r.Stage
			if r.BytesOut > st.LastBytes {
				st.LastBytes = r.BytesOut
			}
		case "end":
			st := get(r)
			st.Complete = true
			st.Err = r.Err
			st.Seconds = r.Seconds
			st.Step = r.Step
			st.Seq = r.Seq
			st.BytesIn = r.BytesIn
			st.BytesOut = r.BytesOut
			st.Stages = r.Stages
			st.Entries = r.Entries
			st.Votes = r.Votes
			if r.Attrs != nil {
				if st.Attrs == nil {
					st.Attrs = map[string]string{}
				}
				for k, v := range r.Attrs {
					st.Attrs[k] = v
				}
			}
		case "note":
			if r.Parent != "" {
				if p, ok := byID[r.Parent]; ok {
					p.Notes = append(p.Notes, *r)
					continue
				}
			}
			// Orphan note: surface it as its own root.
			st := get(r)
			st.Complete = true
			st.Attrs = r.Attrs
		}
	}
	var roots []*OpState
	for _, id := range order {
		st := byID[id]
		if st.Parent != "" {
			if p, ok := byID[st.Parent]; ok {
				p.Children = append(p.Children, st)
				continue
			}
		}
		roots = append(roots, st)
	}
	return roots
}

// Incomplete returns the operations in the tree (roots and all
// descendants) that never wrote an end record — the ones a kill
// interrupted — sorted by ID for stable output.
func Incomplete(roots []*OpState) []*OpState {
	var out []*OpState
	var walk func(st *OpState)
	walk = func(st *OpState) {
		if !st.Complete {
			out = append(out, st)
		}
		for _, c := range st.Children {
			walk(c)
		}
	}
	for _, r := range roots {
		walk(r)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}
