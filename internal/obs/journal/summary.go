// summary.go condenses a journal into the questions an operator
// actually asks: what ran, what was slow, what escalated, what got
// repaired, and which codecs the tuner picked.
package journal

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// SlowOp is one entry of the top-N slowest listing.
type SlowOp struct {
	ID      string
	Op      string
	Step    int
	Seconds float64
	Err     string
}

// OpCount aggregates one operation type.
type OpCount struct {
	Op      string
	Count   int
	Errors  int
	Seconds float64
}

// Summary is the condensed view of a journal.
type Summary struct {
	Records     int
	Torn        bool
	Ops         []OpCount // sorted by count desc
	Slowest     []SlowOp  // top-N by duration
	Incomplete  []SlowOp  // began but never ended (kill evidence)
	Escalations int
	Repairs     int
	// Codecs counts codec decisions: tune picks and checkpoint entry
	// codecs, keyed by the codec label.
	Codecs map[string]int
	// FailedVotes counts per-replica commit votes that came back false.
	FailedVotes int
	// ServerRequests counts completed daemon requests (server.* ops).
	ServerRequests int
	// Rejected breaks refused daemon requests down by refusal reason
	// ("overload", "draining", "deadline", "quota", "auth", ...); the
	// outcome attr the server stamps on every request record.
	Rejected map[string]int
	// DeadlineExceeded counts daemon requests that ran out of deadline
	// (also present in Rejected under "deadline").
	DeadlineExceeded int
}

// Summarize builds a Summary over a record stream. topN bounds the
// slowest-operations listing (0 means 10).
func Summarize(recs []Record, torn bool, topN int) *Summary {
	if topN <= 0 {
		topN = 10
	}
	s := &Summary{Records: len(recs), Torn: torn, Codecs: map[string]int{}, Rejected: map[string]int{}}
	counts := map[string]*OpCount{}
	var ended []SlowOp
	begun := map[string]SlowOp{}
	// Escalations are visible twice: as guard.escalate notes written at
	// the moment of escalation, and as per-entry counts on the checkpoint
	// end record. Count each source separately and report the larger one
	// — notes survive a kill before the end record, the entry counts
	// survive when the notes went to a different journal.
	noteEsc, entryEsc := 0, 0
	for i := range recs {
		r := &recs[i]
		switch r.Phase {
		case "begin":
			begun[r.ID] = SlowOp{ID: r.ID, Op: r.Op}
		case "end":
			delete(begun, r.ID)
			c := counts[r.Op]
			if c == nil {
				c = &OpCount{Op: r.Op}
				counts[r.Op] = c
			}
			c.Count++
			c.Seconds += r.Seconds
			if r.Err != "" {
				c.Errors++
			}
			ended = append(ended, SlowOp{ID: r.ID, Op: r.Op, Step: r.Step, Seconds: r.Seconds, Err: r.Err})
			for _, e := range r.Entries {
				if e.Codec != "" {
					s.Codecs[e.Codec]++
				}
				entryEsc += e.Escalations
			}
			for _, v := range r.Votes {
				if !v.OK {
					s.FailedVotes++
				}
			}
			switch r.Op {
			case "store.read_repair":
				s.Repairs++
			}
			if strings.HasPrefix(r.Op, "server.") {
				s.ServerRequests++
				outcome := r.Attrs["outcome"]
				if outcome == "" && r.Err != "" {
					outcome = "error"
				}
				if outcome != "" && outcome != "ok" {
					s.Rejected[outcome]++
				}
				if outcome == "deadline" {
					s.DeadlineExceeded++
				}
			}
		case "note":
			c := counts[r.Op]
			if c == nil {
				c = &OpCount{Op: r.Op}
				counts[r.Op] = c
			}
			c.Count++
			switch r.Op {
			case "guard.escalate":
				noteEsc++
			case "store.read_repair", "store.scrub_repair":
				s.Repairs++
			case "tune.decision":
				if codec := r.Attrs["codec"]; codec != "" {
					label := codec
					if r.Attrs["shuffle"] == "true" {
						label += "+shuffle"
					}
					s.Codecs[label]++
				}
			}
		}
	}
	s.Escalations = noteEsc
	if entryEsc > noteEsc {
		s.Escalations = entryEsc
	}
	for _, b := range begun {
		s.Incomplete = append(s.Incomplete, b)
	}
	sort.Slice(s.Incomplete, func(i, k int) bool { return s.Incomplete[i].ID < s.Incomplete[k].ID })
	sort.Slice(ended, func(i, k int) bool { return ended[i].Seconds > ended[k].Seconds })
	if len(ended) > topN {
		ended = ended[:topN]
	}
	s.Slowest = ended
	for _, c := range counts {
		s.Ops = append(s.Ops, *c)
	}
	sort.Slice(s.Ops, func(i, k int) bool {
		if s.Ops[i].Count != s.Ops[k].Count {
			return s.Ops[i].Count > s.Ops[k].Count
		}
		return s.Ops[i].Op < s.Ops[k].Op
	})
	return s
}

// WriteMarkdown renders the summary as a markdown report.
func (s *Summary) WriteMarkdown(w io.Writer) error {
	var b strings.Builder
	b.WriteString("# Journal summary\n\n")
	fmt.Fprintf(&b, "- records: %d\n", s.Records)
	if s.Torn {
		b.WriteString("- torn tail: yes (process killed mid-append; final record dropped)\n")
	}
	fmt.Fprintf(&b, "- guard escalations: %d\n", s.Escalations)
	fmt.Fprintf(&b, "- repairs (read-repair + scrub): %d\n", s.Repairs)
	fmt.Fprintf(&b, "- failed replica votes: %d\n", s.FailedVotes)
	if len(s.Incomplete) > 0 {
		fmt.Fprintf(&b, "- **incomplete operations: %d** (began, never ended)\n", len(s.Incomplete))
	}
	b.WriteString("\n## Operations\n\n| op | count | errors | total s |\n|---|---:|---:|---:|\n")
	for _, c := range s.Ops {
		fmt.Fprintf(&b, "| %s | %d | %d | %.4f |\n", c.Op, c.Count, c.Errors, c.Seconds)
	}
	if len(s.Slowest) > 0 {
		b.WriteString("\n## Slowest operations\n\n| id | op | step | seconds | err |\n|---|---|---:|---:|---|\n")
		for _, o := range s.Slowest {
			fmt.Fprintf(&b, "| %s | %s | %d | %.4f | %s |\n", o.ID, o.Op, o.Step, o.Seconds, o.Err)
		}
	}
	if len(s.Incomplete) > 0 {
		b.WriteString("\n## Incomplete operations\n\n| id | op |\n|---|---|\n")
		for _, o := range s.Incomplete {
			fmt.Fprintf(&b, "| %s | %s |\n", o.ID, o.Op)
		}
	}
	if s.ServerRequests > 0 || len(s.Rejected) > 0 {
		b.WriteString("\n## Daemon requests\n\n")
		fmt.Fprintf(&b, "- requests completed: %d\n", s.ServerRequests)
		fmt.Fprintf(&b, "- deadline-exceeded: %d\n", s.DeadlineExceeded)
		if len(s.Rejected) > 0 {
			keys := make([]string, 0, len(s.Rejected))
			for k := range s.Rejected {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			b.WriteString("\n| refusal | count |\n|---|---:|\n")
			for _, k := range keys {
				fmt.Fprintf(&b, "| %s | %d |\n", k, s.Rejected[k])
			}
		}
	}
	if len(s.Codecs) > 0 {
		keys := make([]string, 0, len(s.Codecs))
		for k := range s.Codecs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteString("\n## Codec decisions\n\n| codec | count |\n|---|---:|\n")
		for _, k := range keys {
			fmt.Fprintf(&b, "| %s | %d |\n", k, s.Codecs[k])
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
