package journal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func openTest(t *testing.T, opt Options) (*Journal, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "run.jsonl")
	j, err := Open(path, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	return j, path
}

// TestBeginEndRoundTrip: one op's begin/end pair replays into a single
// complete root with its attributes, stages, and bytes intact.
func TestBeginEndRoundTrip(t *testing.T) {
	j, path := openTest(t, Options{})
	op := j.Begin("ckpt.checkpoint", "codec", "lossy")
	op.SetStep(7)
	op.SetBytes(1000, 250)
	op.Stage("transform", 3*time.Millisecond)
	op.Stage("transform", 2*time.Millisecond) // accumulates
	op.Entry(Entry{Var: "temp", BytesIn: 1000, BytesOut: 250, Codec: "lz4+shuffle", Divisions: 128})
	op.End(nil)

	recs, torn, err := ReadFile(path)
	if err != nil || torn {
		t.Fatalf("read: err=%v torn=%v", err, torn)
	}
	roots := Replay(recs)
	if len(roots) != 1 {
		t.Fatalf("roots = %d, want 1", len(roots))
	}
	r := roots[0]
	if !r.Complete || r.Err != "" || r.Step != 7 || r.BytesIn != 1000 || r.BytesOut != 250 {
		t.Fatalf("bad root state: %+v", r)
	}
	if got := r.Stages["transform"]; got < 0.004 || got > 0.006 {
		t.Fatalf("transform stage = %v, want ~0.005", got)
	}
	if len(r.Entries) != 1 || r.Entries[0].Codec != "lz4+shuffle" {
		t.Fatalf("entries: %+v", r.Entries)
	}
}

// TestParentPropagation: ops begun while a root is active become its
// children in the replayed tree; notes attach the same way.
func TestParentPropagation(t *testing.T) {
	j, path := openTest(t, Options{})
	root := j.Begin("ckpt.checkpoint")
	child := j.Begin("store.commit")
	child.Vote("0", true, nil)
	child.Vote("1", false, errors.New("disk gone"))
	child.End(nil)
	Note("tune.decision", "codec", "gzip")
	_ = j // Note goes through Default; use the journal's own helper instead
	j.Note("guard.escalate", "var", "temp", "why", "bound violated")
	root.End(nil)

	recs, _, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	roots := Replay(recs)
	if len(roots) != 1 {
		t.Fatalf("roots = %d, want 1 (children should nest)", len(roots))
	}
	r := roots[0]
	if len(r.Children) != 1 || r.Children[0].Op != "store.commit" {
		t.Fatalf("children: %+v", r.Children)
	}
	votes := r.Children[0].Votes
	if len(votes) != 2 || votes[0].OK != true || votes[1].OK != false || votes[1].Err == "" {
		t.Fatalf("votes: %+v", votes)
	}
	if len(r.Notes) != 1 || r.Notes[0].Op != "guard.escalate" {
		t.Fatalf("notes: %+v", r.Notes)
	}
	// After the root ends, new ops are roots again.
	j.Begin("ckpt.restore").End(nil)
	recs, _, _ = ReadFile(path)
	if got := len(Replay(recs)); got != 2 {
		t.Fatalf("roots after second op = %d, want 2", got)
	}
}

// TestIncompleteOpSurvivesKill: an op begun but never ended — the
// kill-mid-checkpoint shape — replays as incomplete, carrying the last
// Progress breadcrumb (stage reached, bytes committed).
func TestIncompleteOpSurvivesKill(t *testing.T) {
	j, path := openTest(t, Options{})
	op := j.Begin("ckpt.checkpoint", "mode", "stream")
	op.Progress("entry:temperature", 4096)
	op.Progress("payload_streamed", 9000)
	// no End: simulated kill

	recs, torn, err := ReadFile(path)
	if err != nil || torn {
		t.Fatalf("read: err=%v torn=%v", err, torn)
	}
	roots := Replay(recs)
	if len(roots) != 1 || roots[0].Complete {
		t.Fatalf("want one incomplete root, got %+v", roots)
	}
	if roots[0].LastStage != "payload_streamed" || roots[0].LastBytes != 9000 {
		t.Fatalf("last breadcrumb: stage=%q bytes=%d", roots[0].LastStage, roots[0].LastBytes)
	}
	inc := Incomplete(roots)
	if len(inc) != 1 || inc[0].Op != "ckpt.checkpoint" {
		t.Fatalf("incomplete: %+v", inc)
	}
}

// TestTornTailRecovered: a truncated final line must not poison replay —
// the reader drops it and reports torn=true.
func TestTornTailRecovered(t *testing.T) {
	j, path := openTest(t, Options{})
	j.Begin("ckpt.checkpoint").End(nil)
	j.Begin("ckpt.restore").End(nil)
	j.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the final record mid-JSON.
	torn := data[:len(data)-15]
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	recs, wasTorn, err := ReadFile(path)
	if err != nil {
		t.Fatalf("torn tail must not error: %v", err)
	}
	if !wasTorn {
		t.Fatal("torn=false for a truncated final line")
	}
	roots := Replay(recs)
	if len(roots) != 2 {
		t.Fatalf("roots = %d, want 2 (checkpoint complete, restore's end lost)", len(roots))
	}
	if !roots[0].Complete {
		t.Fatal("first op lost despite living before the tear")
	}
}

// TestCorruptMiddleRejected: a malformed line with records after it is
// real corruption, not a torn tail.
func TestCorruptMiddleRejected(t *testing.T) {
	j, path := openTest(t, Options{})
	j.Begin("a").End(nil)
	j.Close()

	data, _ := os.ReadFile(path)
	bad := []byte("{broken\n")
	mixed := append(bad, data...)
	if err := os.WriteFile(path, mixed, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadFile(path); err == nil {
		t.Fatal("mid-file corruption accepted")
	}
}

// TestRotation: exceeding MaxBytes rotates path → path.1 → …, keeping
// at most MaxFiles rotated generations, and ReadAll stitches them back
// oldest-first.
func TestRotation(t *testing.T) {
	j, path := openTest(t, Options{MaxBytes: 2048, MaxFiles: 3})
	for i := 0; i < 200; i++ {
		op := j.Begin("ckpt.checkpoint", "round", fmt.Sprint(i))
		op.SetStep(i)
		op.End(nil)
	}
	j.Close()

	rotated := RotatedSet(path, DefaultMaxFiles+2)
	if len(rotated) < 2 {
		t.Fatalf("no rotation happened: %v", rotated)
	}
	for _, p := range rotated {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("rotated file %s: %v", p, err)
		}
		if fi.Size() > 2048+int64(DefaultMaxRecordBytes) {
			t.Fatalf("%s is %d bytes, far over the cap", p, fi.Size())
		}
	}
	if extra := filepath.Join(path + ".4"); fileExists(extra) {
		t.Fatalf("%s exists; MaxFiles=3 not enforced", extra)
	}

	recs, _, err := ReadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) < 10 {
		t.Fatalf("ReadAll returned %d records", len(recs))
	}
	// Steps must be non-decreasing across the stitched files.
	last := -1
	for _, r := range recs {
		if r.Phase != "end" {
			continue
		}
		if r.Step < last {
			t.Fatalf("records out of order: step %d after %d", r.Step, last)
		}
		last = r.Step
	}
}

func fileExists(p string) bool {
	_, err := os.Stat(p)
	return err == nil
}

// TestOversizedRecordDropped: a record bigger than MaxRecordBytes is
// dropped rather than written or fatal.
func TestOversizedRecordDropped(t *testing.T) {
	j, path := openTest(t, Options{MaxRecordBytes: 512})
	op := j.Begin("ckpt.checkpoint")
	op.Set("blob", strings.Repeat("x", 4096))
	op.End(nil)
	j.Begin("ckpt.restore").End(nil)

	recs, _, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if r.Phase == "end" && r.Op == "ckpt.checkpoint" {
			t.Fatal("oversized end record was written")
		}
	}
	// The journal stays usable.
	found := false
	for _, r := range recs {
		if r.Op == "ckpt.restore" && r.Phase == "end" {
			found = true
		}
	}
	if !found {
		t.Fatal("journal unusable after oversized drop")
	}
}

// TestNilSafety: a nil journal and its nil ops are inert no-ops.
func TestNilSafety(t *testing.T) {
	var j *Journal
	op := j.Begin("anything")
	op.Set("k", "v")
	op.SetBytes(1, 2)
	op.Stage("s", time.Second)
	op.Entry(Entry{Var: "x"})
	op.Vote("0", true, nil)
	op.Progress("p", 3)
	op.End(errors.New("ignored"))
	j.Note("note")
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentVotesAfterEnd: straggler goroutines voting after End —
// the replicated store's quorum drain shape — must not race or corrupt
// the record. Run under -race.
func TestConcurrentVotesAfterEnd(t *testing.T) {
	j, path := openTest(t, Options{})
	op := j.Begin("store.quorum_commit")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			op.Vote(fmt.Sprint(i), i%2 == 0, nil)
			op.Stage("replica", time.Millisecond)
		}(i)
		if i == 3 {
			op.End(nil) // quorum reached early; stragglers keep calling
		}
	}
	wg.Wait()
	op.End(errors.New("second End must be a no-op"))

	recs, _, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	ends := 0
	for _, r := range recs {
		if r.Phase == "end" {
			ends++
			if r.Err != "" {
				t.Fatalf("second End overwrote the first: %+v", r)
			}
		}
	}
	if ends != 1 {
		t.Fatalf("end records = %d, want 1", ends)
	}
}

// TestConcurrentOps: many goroutines journaling distinct ops at once is
// safe and loses nothing. Run under -race.
func TestConcurrentOps(t *testing.T) {
	j, path := openTest(t, Options{MaxBytes: 1 << 20})
	var wg sync.WaitGroup
	const n = 32
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			op := j.Begin("ckpt.checkpoint", "worker", fmt.Sprint(i))
			op.SetStep(i)
			op.Stage("transform", time.Microsecond)
			op.End(nil)
		}(i)
	}
	wg.Wait()

	recs, _, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	ends := 0
	for _, r := range recs {
		if r.Phase == "end" {
			ends++
		}
	}
	if ends != n {
		t.Fatalf("end records = %d, want %d", ends, n)
	}
}

// TestDefaultJournal: OpenDefault installs the process default and
// SetDefault(nil) uninstalls it; a nil default is a no-op for Note.
func TestDefaultJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "d", "run.jsonl")
	j, err := OpenDefault(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		SetDefault(nil)
		j.Close()
	}()
	if Default() != j {
		t.Fatal("OpenDefault did not install the default")
	}
	Note("tune.decision", "codec", "lz4")
	recs, _, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Op != "tune.decision" {
		t.Fatalf("records: %+v", recs)
	}
	SetDefault(nil)
	Note("dropped") // must not panic with no default installed
}

// TestSummarize: the journal summary counts ops, escalations, repairs,
// codec decisions and failed votes, and renders them as markdown.
func TestSummarize(t *testing.T) {
	j, path := openTest(t, Options{})
	root := j.Begin("ckpt.checkpoint")
	root.Entry(Entry{Var: "t", Codec: "gzip", Escalations: 2})
	q := j.Begin("store.quorum_commit")
	q.Vote("0", true, nil)
	q.Vote("1", false, errors.New("x"))
	q.End(nil)
	j.Note("store.read_repair", "replica", "1", "reason", "corrupt")
	j.Note("tune.decision", "codec", "lz4", "shuffle", "true")
	root.End(nil)
	j.Begin("ckpt.restore") // left incomplete

	recs, torn, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	sum := Summarize(recs, torn, 5)
	if sum.Escalations != 2 {
		t.Errorf("escalations = %d, want 2", sum.Escalations)
	}
	if sum.Repairs != 1 {
		t.Errorf("repairs = %d, want 1", sum.Repairs)
	}
	if sum.FailedVotes != 1 {
		t.Errorf("failed votes = %d, want 1", sum.FailedVotes)
	}
	if sum.Codecs["gzip"] != 1 || sum.Codecs["lz4+shuffle"] != 1 {
		t.Errorf("codecs: %+v", sum.Codecs)
	}
	if len(sum.Incomplete) != 1 {
		t.Errorf("incomplete: %+v", sum.Incomplete)
	}
	var b strings.Builder
	if err := sum.WriteMarkdown(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"ckpt.checkpoint", "lz4+shuffle", "Slowest"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("markdown missing %q", want)
		}
	}
}

// TestSummarizeServerRequests: server.* records break down by the
// outcome attribute — accepted requests, refusals by reason, and the
// deadline-exceeded count — and the markdown report shows the table.
func TestSummarizeServerRequests(t *testing.T) {
	j, path := openTest(t, Options{})
	for _, c := range []struct{ op, outcome string }{
		{"server.save", "ok"},
		{"server.save", "ok"},
		{"server.save", "overload"},
		{"server.save", "quota"},
		{"server.restore", "deadline"},
		{"server.inspect", "auth"},
	} {
		op := j.Begin(c.op, "tenant", "alpha")
		op.Set("outcome", c.outcome)
		if c.outcome == "ok" {
			op.End(nil)
		} else {
			op.End(errors.New(c.outcome))
		}
	}

	recs, torn, err := ReadFile(path)
	if err != nil || torn {
		t.Fatalf("read: err=%v torn=%v", err, torn)
	}
	sum := Summarize(recs, torn, 5)
	if sum.ServerRequests != 6 {
		t.Errorf("server requests = %d, want 6", sum.ServerRequests)
	}
	want := map[string]int{"overload": 1, "quota": 1, "deadline": 1, "auth": 1}
	for reason, n := range want {
		if sum.Rejected[reason] != n {
			t.Errorf("rejected[%s] = %d, want %d", reason, sum.Rejected[reason], n)
		}
	}
	if len(sum.Rejected) != len(want) {
		t.Errorf("rejected map: %+v", sum.Rejected)
	}
	if sum.DeadlineExceeded != 1 {
		t.Errorf("deadline exceeded = %d, want 1", sum.DeadlineExceeded)
	}
	var b strings.Builder
	if err := sum.WriteMarkdown(&b); err != nil {
		t.Fatal(err)
	}
	for _, wantStr := range []string{"Daemon requests", "overload", "deadline-exceeded: 1"} {
		if !strings.Contains(b.String(), wantStr) {
			t.Errorf("markdown missing %q", wantStr)
		}
	}
}

// TestSummarizeJournalTornMidRequest: a daemon killed mid-request
// leaves a begin with no end plus a torn final line. Replay tolerates
// the tear and the summary lists the in-flight request as incomplete —
// the kill evidence an operator greps for.
func TestSummarizeJournalTornMidRequest(t *testing.T) {
	j, path := openTest(t, Options{})
	done := j.Begin("server.save", "tenant", "alpha")
	done.Set("outcome", "ok")
	done.End(nil)
	j.Begin("server.save", "tenant", "beta") // killed before End
	j.Close()

	// Simulate the kill tearing the final append mid-line.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"id":"torn","op":"server.res`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	recs, torn, err := ReadFile(path)
	if err != nil {
		t.Fatalf("torn journal poisoned replay: %v", err)
	}
	if !torn {
		t.Fatal("tear not detected")
	}
	sum := Summarize(recs, torn, 5)
	if !sum.Torn {
		t.Error("summary does not flag the torn tail")
	}
	if sum.ServerRequests != 1 {
		t.Errorf("server requests = %d, want 1 (only the completed save)", sum.ServerRequests)
	}
	if len(sum.Incomplete) != 1 || sum.Incomplete[0].Op != "server.save" {
		t.Errorf("incomplete: %+v", sum.Incomplete)
	}
	var b strings.Builder
	if err := sum.WriteMarkdown(&b); err != nil {
		t.Fatal(err)
	}
	for _, wantStr := range []string{"torn tail", "incomplete operations: 1"} {
		if !strings.Contains(b.String(), wantStr) {
			t.Errorf("markdown missing %q", wantStr)
		}
	}
}
