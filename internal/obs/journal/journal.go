// Package journal is the flight recorder: every significant operation
// (checkpoint, restore, store commit, quorum vote, read-repair, scrub,
// tune probe, guard escalation) emits one structured wide event to an
// append-only JSONL file, so a single failed or slow operation can be
// replayed after the fact from the journal alone — no debugger, no
// re-run. The journal is bounded (size-based rotation over a small
// ring of files) and deliberately boring: encoding/json, O_APPEND
// writes, one mutex. A nil *Journal is a valid no-op recorder, exactly
// like a nil *obs.Registry, so call sites never branch on "is the
// flight recorder on".
//
// Records carry an operation ID and the ID of the operation that was
// active when they began, so a checkpoint's store commit, its replica
// votes, and any guard escalations raised while encoding all join
// under one trace. Parent attribution uses a process-wide "active
// operation" register: exact for the sequential CLI and faultsim
// paths, best-effort when independent operations genuinely overlap.
package journal

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"lossyckpt/internal/obs"
)

// Defaults for Options fields left zero.
const (
	DefaultMaxBytes       = 4 << 20   // rotate the active file beyond 4 MiB
	DefaultMaxFiles       = 4         // active file + 3 rotated predecessors
	DefaultMaxRecordBytes = 256 << 10 // drop single records larger than this
)

// Options configures a Journal. The zero value is usable.
type Options struct {
	// MaxBytes rotates the active file once it exceeds this size.
	MaxBytes int64
	// MaxFiles bounds the rotation ring: the active file plus
	// MaxFiles-1 rotated predecessors (path.1 newest … path.N oldest).
	MaxFiles int
	// MaxRecordBytes drops any single encoded record larger than this
	// (counted on Observer) instead of letting one degenerate event
	// blow the ring.
	MaxRecordBytes int
	// Observer receives journal health metrics (records written,
	// rotations, drops). Nil means obs.Default().
	Observer *obs.Registry
}

// Metric names the journal emits on its observer.
const (
	MetricRecords        = "lossyckpt_journal_records_total"
	MetricBytes          = "lossyckpt_journal_bytes_total"
	MetricRotations      = "lossyckpt_journal_rotations_total"
	MetricDroppedRecords = "lossyckpt_journal_dropped_records_total"
	MetricWriteErrors    = "lossyckpt_journal_write_errors_total"
)

// Vote records one replica's outcome inside a quorum commit.
type Vote struct {
	Replica string `json:"replica"`
	OK      bool   `json:"ok"`
	Err     string `json:"err,omitempty"`
}

// Entry is the per-variable slice of a checkpoint/restore wide event:
// the stage waterfall, codec decisions, and guard outcome for one
// array.
type Entry struct {
	Var         string             `json:"var"`
	BytesIn     int                `json:"bytes_in,omitempty"`
	BytesOut    int                `json:"bytes_out,omitempty"`
	Codec       string             `json:"codec,omitempty"`
	Shuffle     bool               `json:"shuffle,omitempty"`
	Divisions   int                `json:"divisions,omitempty"`
	Guard       string             `json:"guard,omitempty"`
	Escalations int                `json:"escalations,omitempty"`
	Stages      map[string]float64 `json:"stages,omitempty"`
	// Chunks carries the per-chunk stage waterfall under the chunked
	// streaming path, in chunk order.
	Chunks []map[string]float64 `json:"chunks,omitempty"`
}

// Record is one wide event. Phase distinguishes the slim "begin"
// marker written when an operation starts (the evidence a killed
// process leaves behind), optional "progress" markers, and the full
// "end" event carrying the whole waterfall.
type Record struct {
	Time     time.Time          `json:"ts"`
	ID       string             `json:"id"`
	Parent   string             `json:"parent,omitempty"`
	Op       string             `json:"op"`
	Phase    string             `json:"phase"` // begin | progress | end | note
	Step     int                `json:"step,omitempty"`
	Seq      uint64             `json:"seq,omitempty"`
	Stage    string             `json:"stage,omitempty"`
	Err      string             `json:"err,omitempty"`
	Seconds  float64            `json:"seconds,omitempty"`
	BytesIn  int64              `json:"bytes_in,omitempty"`
	BytesOut int64              `json:"bytes_out,omitempty"`
	Stages   map[string]float64 `json:"stages,omitempty"`
	Entries  []Entry            `json:"entries,omitempty"`
	Votes    []Vote             `json:"votes,omitempty"`
	Attrs    map[string]string  `json:"attrs,omitempty"`
}

// Journal appends wide events to a JSONL file with size-based
// rotation. All methods are safe for concurrent use and safe on a nil
// receiver (no-op).
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	path string
	size int64
	opt  Options
	seq  atomic.Uint64

	// active is the ID of the most recent root operation still open —
	// the parent new operations and notes attach to. Best-effort under
	// concurrency (see package comment).
	active atomic.Pointer[string]
}

// Open creates (or appends to) the journal at path. The directory must
// exist.
func Open(path string, opt Options) (*Journal, error) {
	if opt.MaxBytes <= 0 {
		opt.MaxBytes = DefaultMaxBytes
	}
	if opt.MaxFiles <= 0 {
		opt.MaxFiles = DefaultMaxFiles
	}
	if opt.MaxRecordBytes <= 0 {
		opt.MaxRecordBytes = DefaultMaxRecordBytes
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: open: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: stat: %w", err)
	}
	return &Journal{f: f, path: path, size: st.Size(), opt: opt}, nil
}

// Path returns the active journal file path ("" on nil).
func (j *Journal) Path() string {
	if j == nil {
		return ""
	}
	return j.path
}

// Close flushes and closes the active file. The journal must not be
// used afterwards.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// observer resolves the configured registry or the process default.
func (j *Journal) observer() *obs.Registry {
	if j.opt.Observer != nil {
		return j.opt.Observer
	}
	return obs.Default()
}

// nextID mints a process-unique operation ID.
func (j *Journal) nextID() string {
	return fmt.Sprintf("op-%d-%d", os.Getpid(), j.seq.Add(1))
}

// append encodes and writes one record, rotating first if the active
// file is over budget. Drops (never blocks or fails the caller) on
// encode errors or oversized records.
func (j *Journal) append(rec *Record) {
	if j == nil {
		return
	}
	if rec.Time.IsZero() {
		rec.Time = time.Now().UTC()
	}
	b, err := json.Marshal(rec)
	if err != nil || len(b)+1 > j.opt.MaxRecordBytes {
		j.observer().Counter(MetricDroppedRecords).Inc()
		return
	}
	b = append(b, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return
	}
	if j.size+int64(len(b)) > j.opt.MaxBytes && j.size > 0 {
		j.rotateLocked()
	}
	n, err := j.f.Write(b)
	j.size += int64(n)
	o := j.observer()
	if err != nil {
		o.Counter(MetricWriteErrors).Inc()
		return
	}
	o.Counter(MetricRecords).Inc()
	o.Counter(MetricBytes).Add(float64(n))
}

// rotateLocked shifts path → path.1 → … → path.(MaxFiles-1), dropping
// the oldest, and reopens a fresh active file. Errors are swallowed
// (the recorder must never take down the recorded).
func (j *Journal) rotateLocked() {
	j.f.Close()
	for i := j.opt.MaxFiles - 1; i >= 1; i-- {
		from := j.path
		if i > 1 {
			from = fmt.Sprintf("%s.%d", j.path, i-1)
		}
		to := fmt.Sprintf("%s.%d", j.path, i)
		if i == j.opt.MaxFiles-1 {
			os.Remove(to)
		}
		os.Rename(from, to)
	}
	f, err := os.OpenFile(j.path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		j.f = nil
		j.observer().Counter(MetricWriteErrors).Inc()
		return
	}
	j.f = f
	j.size = 0
	j.observer().Counter(MetricRotations).Inc()
}

// Files returns the journal file set oldest-first: rotated
// predecessors then the active file. Nil-safe.
func (j *Journal) Files() []string {
	if j == nil {
		return nil
	}
	return RotatedSet(j.path, j.opt.MaxFiles)
}

// RotatedSet lists the existing files of a rotation ring oldest-first
// for a given base path and ring size (0 means DefaultMaxFiles).
func RotatedSet(path string, maxFiles int) []string {
	if maxFiles <= 0 {
		maxFiles = DefaultMaxFiles
	}
	var out []string
	for i := maxFiles - 1; i >= 1; i-- {
		p := fmt.Sprintf("%s.%d", path, i)
		if _, err := os.Stat(p); err == nil {
			out = append(out, p)
		}
	}
	if _, err := os.Stat(path); err == nil {
		out = append(out, path)
	}
	return out
}

// Op is an in-flight operation accumulating one wide event. Created by
// Begin, finished by End. Safe on a nil receiver and for concurrent
// mutation (replica vote outcomes arrive from worker goroutines);
// mutations after End are dropped.
type Op struct {
	j     *Journal
	mu    sync.Mutex
	rec   Record
	start time.Time
	root  bool
	done  bool
}

// Begin opens an operation: a slim begin record is written immediately
// (the evidence a kill leaves behind), and the returned Op accumulates
// the waterfall until End. attrs are alternating key/value strings.
func (j *Journal) Begin(op string, attrs ...string) *Op {
	if j == nil {
		return nil
	}
	id := j.nextID()
	var parent string
	root := j.active.CompareAndSwap(nil, &id)
	if !root {
		if p := j.active.Load(); p != nil {
			parent = *p
		}
	}
	o := &Op{
		j:     j,
		start: time.Now(),
		root:  root,
		rec: Record{
			ID:     id,
			Parent: parent,
			Op:     op,
			Attrs:  attrMap(attrs),
		},
	}
	j.append(&Record{
		ID:     id,
		Parent: parent,
		Op:     op,
		Phase:  "begin",
		Attrs:  o.rec.Attrs,
	})
	return o
}

// ID returns the operation ID ("" on nil).
func (o *Op) ID() string {
	if o == nil {
		return ""
	}
	return o.rec.ID
}

// Set adds or overwrites string attributes on the final record.
func (o *Op) Set(attrs ...string) {
	if o == nil {
		return
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.rec.Attrs == nil {
		o.rec.Attrs = map[string]string{}
	}
	for i := 0; i+1 < len(attrs); i += 2 {
		o.rec.Attrs[attrs[i]] = attrs[i+1]
	}
}

// SetStep records the application step the operation acts on.
func (o *Op) SetStep(step int) {
	if o == nil {
		return
	}
	o.mu.Lock()
	o.rec.Step = step
	o.mu.Unlock()
}

// SetSeq records the store generation sequence.
func (o *Op) SetSeq(seq uint64) {
	if o == nil {
		return
	}
	o.mu.Lock()
	o.rec.Seq = seq
	o.mu.Unlock()
}

// SetBytes records the operation's input/output byte totals.
func (o *Op) SetBytes(in, out int64) {
	if o == nil {
		return
	}
	o.mu.Lock()
	o.rec.BytesIn = in
	o.rec.BytesOut = out
	o.mu.Unlock()
}

// Stage records one stage's duration in the operation waterfall.
func (o *Op) Stage(name string, d time.Duration) {
	if o == nil {
		return
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.rec.Stages == nil {
		o.rec.Stages = map[string]float64{}
	}
	o.rec.Stages[name] += d.Seconds()
}

// Entry appends one per-variable entry to the wide event.
func (o *Op) Entry(e Entry) {
	if o == nil {
		return
	}
	o.mu.Lock()
	o.rec.Entries = append(o.rec.Entries, e)
	o.mu.Unlock()
}

// Vote appends one replica vote outcome to the wide event.
func (o *Op) Vote(replica string, ok bool, err error) {
	if o == nil {
		return
	}
	v := Vote{Replica: replica, OK: ok}
	if err != nil {
		v.Err = err.Error()
	}
	o.mu.Lock()
	o.rec.Votes = append(o.rec.Votes, v)
	o.mu.Unlock()
}

// Progress writes an immediate slim record marking the furthest stage
// reached and bytes handled so far — the breadcrumb trail a
// kill-mid-operation replay walks.
func (o *Op) Progress(stage string, bytes int64) {
	if o == nil {
		return
	}
	o.j.append(&Record{
		ID:       o.rec.ID,
		Parent:   o.rec.Parent,
		Op:       o.rec.Op,
		Phase:    "progress",
		Stage:    stage,
		BytesOut: bytes,
	})
}

// End finishes the operation: the full wide event is written with
// total duration and the error, if any, and the active-operation
// register is released if this Op held it.
func (o *Op) End(err error) {
	if o == nil {
		return
	}
	o.mu.Lock()
	if o.done {
		o.mu.Unlock()
		return
	}
	o.done = true
	rec := o.rec
	o.mu.Unlock()
	rec.Phase = "end"
	rec.Seconds = time.Since(o.start).Seconds()
	if err != nil {
		rec.Err = err.Error()
	}
	if o.root {
		// While this Op held the register no other Begin could replace
		// it (they only CAS from nil), so an unconditional clear is
		// safe.
		o.j.active.Store(nil)
	}
	o.j.append(&rec)
}

// Note writes one self-contained wide event (begin+end collapsed) for
// single-shot facts: a guard escalation, a tune decision, a read
// repair. It inherits the active operation as parent.
func (j *Journal) Note(op string, attrs ...string) {
	if j == nil {
		return
	}
	var parent string
	if p := j.active.Load(); p != nil {
		parent = *p
	}
	j.append(&Record{
		ID:     j.nextID(),
		Parent: parent,
		Op:     op,
		Phase:  "note",
		Attrs:  attrMap(attrs),
	})
}

// attrMap folds alternating key/value strings into a map.
func attrMap(attrs []string) map[string]string {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]string, len(attrs)/2)
	for i := 0; i+1 < len(attrs); i += 2 {
		m[attrs[i]] = attrs[i+1]
	}
	return m
}

// defaultJournal is the process-wide recorder, mirroring obs.Default:
// install once in main, record everywhere without plumbing.
var defaultJournal atomic.Pointer[Journal]

// Default returns the process-wide journal, or nil (a valid no-op
// recorder) when none is installed.
func Default() *Journal { return defaultJournal.Load() }

// SetDefault installs j as the process-wide journal and returns the
// previous one. SetDefault(nil) disables default recording.
func SetDefault(j *Journal) *Journal { return defaultJournal.Swap(j) }

// OpenDefault opens a journal at path (creating parent directories)
// and installs it as the process default. Convenience for CLIs.
func OpenDefault(path string, opt Options) (*Journal, error) {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("journal: mkdir: %w", err)
		}
	}
	j, err := Open(path, opt)
	if err != nil {
		return nil, err
	}
	SetDefault(j)
	return j, nil
}

// Note records a one-shot event on the process default journal — a
// no-op when none is installed.
func Note(op string, attrs ...string) { Default().Note(op, attrs...) }
