package obs

import (
	"errors"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops_total", "kind", "x")
	c.Inc()
	c.Add(2.5)
	c.Add(-3) // ignored: counters are monotone
	c.Add(math.NaN())
	if got := c.Value(); got != 3.5 {
		t.Errorf("counter = %v, want 3.5", got)
	}
	// Same name+labels → same series, regardless of label order.
	c2 := r.Counter("ops_total", "kind", "x")
	if c2.Value() != 3.5 {
		t.Errorf("re-lookup = %v, want 3.5", c2.Value())
	}

	g := r.Gauge("depth")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Errorf("gauge = %v, want 5", g.Value())
	}
	g.Set(math.Inf(1)) // ignored
	if g.Value() != 5 {
		t.Errorf("gauge after Inf set = %v, want 5", g.Value())
	}
}

func TestLabelOrderCanonicalized(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "a", "1", "b", "2").Inc()
	r.Counter("m", "b", "2", "a", "1").Inc()
	snap := r.Snapshot()
	if len(snap.Metrics) != 1 {
		t.Fatalf("label order created %d series, want 1", len(snap.Metrics))
	}
	if snap.Metrics[0].Value != 2 {
		t.Errorf("value = %v, want 2", snap.Metrics[0].Value)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	h.Observe(math.NaN()) // ignored
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 0.005+0.05+0.05+0.5+5; math.Abs(got-want) > 1e-12 {
		t.Errorf("sum = %v, want %v", got, want)
	}
	snap := r.Snapshot()
	buckets := snap.Metrics[0].Buckets
	wantCum := []uint64{1, 3, 4, 5} // le=0.01, 0.1, 1, +Inf
	if len(buckets) != len(wantCum) {
		t.Fatalf("bucket count = %d, want %d", len(buckets), len(wantCum))
	}
	for i, b := range buckets {
		if b.Count != wantCum[i] {
			t.Errorf("bucket[%d] = %d, want %d", i, b.Count, wantCum[i])
		}
	}
	if !math.IsInf(buckets[len(buckets)-1].LE, 1) {
		t.Errorf("last bucket bound = %v, want +Inf", buckets[len(buckets)-1].LE)
	}
}

func TestKindConflictIsNoop(t *testing.T) {
	r := NewRegistry()
	r.Counter("m").Inc()
	g := r.Gauge("m") // kind conflict → zero instrument, not a panic
	g.Set(99)
	if got := r.Counter("m").Value(); got != 1 {
		t.Errorf("conflicting registration corrupted the counter: %v", got)
	}
}

func TestNilRegistryIsNoop(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("y").Set(3)
	r.Histogram("z", DurationBuckets).Observe(1)
	r.Event("e", "k", "v")
	r.StartSpan("op").EndErr(errors.New("boom"))
	r.SetHelp("x", "help")
	if evs, dropped := r.Events(); len(evs) != 0 || dropped != 0 {
		t.Error("nil registry retained events")
	}
	snap := r.Snapshot()
	if len(snap.Metrics) != 0 {
		t.Error("nil registry snapshot has metrics")
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Errorf("WritePrometheus(nil): %v", err)
	}
	if err := r.WriteSummary(&sb); err != nil {
		t.Errorf("WriteSummary(nil): %v", err)
	}
}

func TestDefaultRegistryInstallRestore(t *testing.T) {
	if Default() != nil {
		t.Skip("another test installed a default registry")
	}
	r := NewRegistry()
	prev := SetDefault(r)
	if prev != nil {
		t.Errorf("previous default = %v, want nil", prev)
	}
	if Default() != r {
		t.Error("Default() did not return the installed registry")
	}
	SetDefault(prev)
	if Default() != nil {
		t.Error("default not restored")
	}
}

func TestEventRingBounded(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < DefaultEventCap+10; i++ {
		r.Event("tick", "i", i)
	}
	evs, dropped := r.Events()
	if len(evs) != DefaultEventCap {
		t.Errorf("retained %d events, want %d", len(evs), DefaultEventCap)
	}
	if dropped != 10 {
		t.Errorf("dropped = %d, want 10", dropped)
	}
	// Oldest-first: the first retained event is i=10.
	if evs[0].Attrs[1] != "10" {
		t.Errorf("oldest retained event i=%s, want 10", evs[0].Attrs[1])
	}
}

func TestSpanRecordsMetricsAndEvent(t *testing.T) {
	r := NewRegistry()
	sp := r.StartSpan("store_commit", "gen", "3")
	time.Sleep(time.Millisecond)
	sp.End()
	r.StartSpan("store_commit").EndErr(errors.New("disk on fire"))

	if got := r.Counter("store_commit_total").Value(); got != 2 {
		t.Errorf("span total = %v, want 2", got)
	}
	if got := r.Counter("store_commit_errors_total").Value(); got != 1 {
		t.Errorf("span errors = %v, want 1", got)
	}
	h := r.Histogram("store_commit_seconds", DurationBuckets)
	if h.Count() != 2 || h.Sum() <= 0 {
		t.Errorf("span histogram count=%d sum=%v", h.Count(), h.Sum())
	}
	evs, _ := r.Events()
	if len(evs) != 2 {
		t.Fatalf("events = %d, want 2", len(evs))
	}
	found := false
	for i := 0; i+1 < len(evs[1].Attrs); i += 2 {
		if evs[1].Attrs[i] == "error" && strings.Contains(evs[1].Attrs[i+1], "disk") {
			found = true
		}
	}
	if !found {
		t.Errorf("error attr missing from span event: %v", evs[1].Attrs)
	}
}

// TestConcurrentRecording is the obs half of the ISSUE's race-coverage
// satellite: many goroutines hammer the same histogram and counter while
// others register fresh series and take snapshots, all under -race.
func TestConcurrentRecording(t *testing.T) {
	const goroutines = 16
	const perG = 2000
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h := r.Histogram("shared_seconds", DurationBuckets)
			c := r.Counter("shared_total")
			for i := 0; i < perG; i++ {
				h.Observe(float64(i%7) * 0.001)
				c.Inc()
				if i%100 == 0 {
					// Concurrent registration of per-goroutine series.
					r.Counter("per_g_total", "g", string(rune('a'+g))).Inc()
					r.Event("tick", "g", g)
				}
			}
		}(g)
	}
	// Concurrent readers while writers run.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			_ = r.WritePrometheus(&sb)
			r.Snapshot()
		}
	}()
	wg.Wait()
	<-done

	if got := r.Counter("shared_total").Value(); got != goroutines*perG {
		t.Errorf("counter = %v, want %d", got, goroutines*perG)
	}
	h := r.Histogram("shared_seconds", DurationBuckets)
	if h.Count() != goroutines*perG {
		t.Errorf("histogram count = %d, want %d", h.Count(), goroutines*perG)
	}
	// Cumulative +Inf bucket must equal the total count.
	snap := r.Snapshot()
	for _, m := range snap.Metrics {
		if m.Name == "shared_seconds" {
			last := m.Buckets[len(m.Buckets)-1]
			if last.Count != goroutines*perG {
				t.Errorf("+Inf bucket = %d, want %d", last.Count, goroutines*perG)
			}
		}
	}
}
