package obs

import (
	"fmt"
	"sync"
	"time"
)

// DefaultEventCap bounds the event ring: old events are dropped once the
// ring is full, so a long run cannot grow memory without bound. The drop
// count is reported in snapshots.
const DefaultEventCap = 512

// Event is one lightweight span/trace record: a timestamp, a dotted name
// ("store.commit", "ckpt.restore.fallback") and alternating key/value
// attribute pairs.
type Event struct {
	Time  time.Time
	Name  string
	Attrs []string
}

// eventRing is a mutex-protected bounded ring of events. Recording is a
// short critical section (append + index math); exposition copies out
// under the same lock.
type eventRing struct {
	mu      sync.Mutex
	cap     int
	buf     []Event
	next    int // write position once buf is full
	dropped uint64
}

func (e *eventRing) add(ev Event) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.cap <= 0 {
		e.cap = DefaultEventCap
	}
	if len(e.buf) < e.cap {
		e.buf = append(e.buf, ev)
		return
	}
	e.buf[e.next] = ev
	e.next = (e.next + 1) % e.cap
	e.dropped++
}

// snapshot returns the retained events oldest-first plus the drop count.
func (e *eventRing) snapshot() ([]Event, uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Event, 0, len(e.buf))
	out = append(out, e.buf[e.next:]...)
	out = append(out, e.buf[:e.next]...)
	return out, e.dropped
}

// Event appends one trace event to the bounded ring. Attrs are
// alternating key/value pairs; values are formatted with %v.
func (r *Registry) Event(name string, attrs ...any) {
	if r == nil {
		return
	}
	strs := make([]string, len(attrs))
	for i, a := range attrs {
		if s, ok := a.(string); ok {
			strs[i] = s
		} else {
			strs[i] = fmt.Sprint(a)
		}
	}
	r.events.add(Event{Time: time.Now(), Name: name, Attrs: strs})
}

// Events returns the retained events oldest-first and the number dropped
// from the ring so far.
func (r *Registry) Events() ([]Event, uint64) {
	if r == nil {
		return nil, 0
	}
	return r.events.snapshot()
}

// Span measures one operation: StartSpan stamps the clock, End records
// a <name>_seconds histogram observation, a <name>_total counter
// increment (plus <name>_errors_total on failure) and one trace event.
// A nil *Span (from a nil Registry) is a no-op.
type Span struct {
	r     *Registry
	name  string
	start time.Time
	attrs []any
}

// StartSpan opens a span. The attrs travel onto the completion event.
func (r *Registry) StartSpan(name string, attrs ...any) *Span {
	if r == nil {
		return nil
	}
	return &Span{r: r, name: name, start: time.Now(), attrs: attrs}
}

// End closes the span successfully.
func (s *Span) End() { s.EndErr(nil) }

// EndErr closes the span, recording the error outcome when err != nil.
func (s *Span) EndErr(err error) {
	if s == nil {
		return
	}
	d := time.Since(s.start)
	s.r.Histogram(s.name+"_seconds", DurationBuckets).ObserveDuration(d)
	s.r.Counter(s.name + "_total").Inc()
	attrs := append(s.attrs, "seconds", fmt.Sprintf("%.6f", d.Seconds()))
	if err != nil {
		s.r.Counter(s.name + "_errors_total").Inc()
		attrs = append(attrs, "error", err.Error())
	}
	s.r.Event(s.name, attrs...)
}
