package guard

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"lossyckpt/internal/core"
	"lossyckpt/internal/grid"
	"lossyckpt/internal/obs"
	"lossyckpt/internal/quant"
	"lossyckpt/internal/stats"
	"lossyckpt/internal/wavelet"
)

// makeField builds one of several data classes on a small 3-D grid.
func makeField(t *testing.T, class string, seed int64) *grid.Field {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	f := grid.MustNew(12, 10, 6)
	d := f.Data()
	switch class {
	case "smooth":
		nx, nz := 12, 10
		for i := range d {
			x, z := i/(nz*6), (i/6)%nz
			d[i] = 275 + 40*math.Sin(2*math.Pi*float64(x)/float64(nx))*
				math.Cos(2*math.Pi*float64(z)/float64(nz))
		}
	case "noise":
		for i := range d {
			d[i] = rng.NormFloat64() * 1e3
		}
	case "constant":
		for i := range d {
			d[i] = 42.5
		}
	case "spiky":
		for i := range d {
			d[i] = math.Sin(float64(i) / 7)
			if rng.Intn(50) == 0 {
				d[i] *= 1e6
			}
		}
	case "nan":
		for i := range d {
			d[i] = rng.Float64() * 10
			if rng.Intn(20) == 0 {
				d[i] = math.NaN()
			}
		}
	case "inf":
		for i := range d {
			d[i] = rng.Float64() * 10
			if rng.Intn(25) == 0 {
				d[i] = math.Inf(1 - 2*rng.Intn(2))
			}
		}
	default:
		t.Fatalf("unknown class %s", class)
	}
	return f
}

// annEqual compares annotations treating NaN float fields as equal
// (struct == would fail on the unbounded mode's NaN achieved figures).
func annEqual(a, b Annotation) bool {
	feq := func(x, y float64) bool {
		return math.Float64bits(x) == math.Float64bits(y)
	}
	return a.Mode == b.Mode && a.Verified == b.Verified &&
		a.BudgetExhausted == b.BudgetExhausted &&
		feq(a.MaxAbs, b.MaxAbs) && feq(a.MaxRel, b.MaxRel) && feq(a.PSNRFloor, b.PSNRFloor) &&
		feq(a.AchievedMaxAbs, b.AchievedMaxAbs) && feq(a.AchievedMaxRel, b.AchievedMaxRel) &&
		feq(a.AchievedPSNR, b.AchievedPSNR) &&
		a.Escalations == b.Escalations && a.Attempts == b.Attempts
}

func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestGuardProperty is the acceptance property: for randomized arrays and
// policies, every encode either provably meets its declared bound —
// checked here by an independent full decode — or ships marked
// lossless-fallback and restores bit-exact. Run under -race, subtests in
// parallel, to also exercise concurrent guard encodes.
func TestGuardProperty(t *testing.T) {
	classes := []string{"smooth", "noise", "constant", "spiky", "nan", "inf"}
	bounds := []Policy{
		{MaxAbs: 1e-1},
		{MaxAbs: 1e-3},
		{MaxAbs: 1e-9},
		{MaxRel: 1e-2},
		{MaxRel: 1e-6},
		{PSNRFloor: 60},
		{PSNRFloor: 140},
		{MaxAbs: 1e-2, MaxRel: 1e-4, PSNRFloor: 80},
		{}, // unbounded
	}
	schemes := []wavelet.Scheme{wavelet.Haar, wavelet.CDF53}
	for _, class := range classes {
		for bi, bpol := range bounds {
			for _, vm := range []VerifyMode{VerifyAnalytic, VerifyDecode} {
				pol := bpol
				pol.Verify = vm
				class := class
				scheme := schemes[bi%len(schemes)]
				name := fmt.Sprintf("%s/b%d/%v", class, bi, vm)
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					f := makeField(t, class, int64(1000+bi))
					orig := append([]float64(nil), f.Data()...)
					base := core.DefaultOptions()
					base.Scheme = scheme
					out, err := Encode("v", f, base, pol)
					if err != nil {
						t.Fatalf("Encode: %v", err)
					}
					ann := out.Annotation
					g, ann2, err := Decode(out.Payload, f.Shape(), 0)
					if err != nil {
						t.Fatalf("Decode: %v", err)
					}
					if !annEqual(ann, ann2) {
						t.Errorf("annotation round-trip mismatch:\n enc %+v\n dec %+v", ann, ann2)
					}
					if !pol.Enforced() {
						if ann.Mode != Unbounded {
							t.Errorf("unenforced policy got mode %v", ann.Mode)
						}
						return
					}
					if ann.Mode == Unbounded {
						t.Fatalf("enforced policy shipped unbounded")
					}
					if ann.Mode == Lossless {
						if !bitsEqual(orig, g.Data()) {
							t.Fatalf("lossless-fallback not bit-exact")
						}
						return
					}
					// Bounded or lossless-bands: the declared bound must
					// hold for the actual reconstruction.
					maxAbs, err := stats.MaxAbsError(orig, g.Data())
					if err != nil {
						t.Fatal(err)
					}
					maxRel, err := stats.MaxRelError(orig, g.Data())
					if err != nil {
						t.Fatal(err)
					}
					psnr, err := stats.PSNR(orig, g.Data())
					if err != nil {
						t.Fatal(err)
					}
					if math.IsNaN(maxAbs) {
						t.Fatalf("mode %v shipped non-finite mismatch", ann.Mode)
					}
					if pol.MaxAbs > 0 && maxAbs > pol.MaxAbs {
						t.Errorf("max-abs %g > bound %g (mode %v)", maxAbs, pol.MaxAbs, ann.Mode)
					}
					if pol.MaxRel > 0 && maxRel > pol.MaxRel {
						t.Errorf("max-rel %g > bound %g (mode %v)", maxRel, pol.MaxRel, ann.Mode)
					}
					if pol.PSNRFloor > 0 && !(psnr >= pol.PSNRFloor) {
						t.Errorf("PSNR %g < floor %g (mode %v)", psnr, pol.PSNRFloor, ann.Mode)
					}
					// The annotation's achieved figures must themselves
					// bound the measurement (they are what restore reports).
					if maxAbs > ann.AchievedMaxAbs+1e-300 {
						t.Errorf("measured max-abs %g exceeds annotated ceiling %g", maxAbs, ann.AchievedMaxAbs)
					}
				})
			}
		}
	}
}

// TestGuardEscalationLadder: noise under a tight bound must escalate past
// the division rungs, and the escalation trail must land in the metrics.
func TestGuardEscalationLadder(t *testing.T) {
	reg := obs.NewRegistry()
	f := makeField(t, "noise", 3)
	pol := Policy{MaxAbs: 1e-12, Verify: VerifyDecode, Observer: reg}
	out, err := Encode("temp", f, core.DefaultOptions(), pol)
	if err != nil {
		t.Fatal(err)
	}
	ann := out.Annotation
	if ann.Mode == Unbounded || ann.Mode == Bounded {
		t.Fatalf("noise at 1e-12 stayed %v; want escalation", ann.Mode)
	}
	if ann.Escalations == 0 {
		t.Errorf("no escalations recorded: %+v", ann)
	}
	if ann.Attempts < 2 {
		t.Errorf("attempts %d, want ≥ 2 (ladder walked)", ann.Attempts)
	}
}

// TestGuardBudgetExhaustion: a one-attempt budget must jump to lossless
// with the flag set — never a silent violation.
func TestGuardBudgetExhaustion(t *testing.T) {
	f := makeField(t, "noise", 5)
	orig := append([]float64(nil), f.Data()...)
	pol := Policy{MaxAbs: 1e-13, Verify: VerifyDecode, MaxAttempts: 1}
	out, err := Encode("v", f, core.DefaultOptions(), pol)
	if err != nil {
		t.Fatal(err)
	}
	if out.Annotation.Mode != Lossless {
		t.Fatalf("mode %v, want lossless after budget exhaustion", out.Annotation.Mode)
	}
	if !out.Annotation.BudgetExhausted {
		t.Errorf("BudgetExhausted not set: %+v", out.Annotation)
	}
	g, _, err := Decode(out.Payload, f.Shape(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bitsEqual(orig, g.Data()) {
		t.Errorf("budget-exhausted fallback not bit-exact")
	}
}

// TestGuardTimeBudget: an already-expired wall-clock budget degrades to
// lossless the same way.
func TestGuardTimeBudget(t *testing.T) {
	f := makeField(t, "smooth", 5)
	pol := Policy{MaxAbs: 1e-6, MaxDuration: time.Nanosecond,
		Sleep: func(time.Duration) {}}
	time.Sleep(time.Millisecond)
	out, err := Encode("v", f, core.DefaultOptions(), pol)
	if err != nil {
		t.Fatal(err)
	}
	if out.Annotation.Mode != Lossless || !out.Annotation.BudgetExhausted {
		t.Errorf("got %+v, want budget-exhausted lossless", out.Annotation)
	}
}

// TestGuardPerVarOverride: PerVar bounds override the base policy.
func TestGuardPerVarOverride(t *testing.T) {
	pol := Policy{MaxAbs: 1, PerVar: map[string]Policy{
		"strict": {MaxAbs: 1e-15, Verify: VerifyDecode},
	}}
	eff := pol.ForVar("strict")
	if eff.MaxAbs != 1e-15 || eff.Verify != VerifyDecode {
		t.Fatalf("override not applied: %+v", eff)
	}
	if other := pol.ForVar("relaxed"); other.MaxAbs != 1 {
		t.Fatalf("base policy mutated: %+v", other)
	}
	f := makeField(t, "noise", 9)
	outStrict, err := Encode("strict", f, core.DefaultOptions(), pol)
	if err != nil {
		t.Fatal(err)
	}
	outRelaxed, err := Encode("relaxed", f, core.DefaultOptions(), pol)
	if err != nil {
		t.Fatal(err)
	}
	if outStrict.Annotation.Mode != Lossless {
		t.Errorf("strict var mode %v, want lossless", outStrict.Annotation.Mode)
	}
	if outRelaxed.Annotation.Mode == Lossless {
		t.Errorf("relaxed var escalated to lossless; ladder too eager")
	}
}

// TestGuardBackoff: violations trigger capped exponential backoff through
// the injected sleep.
func TestGuardBackoff(t *testing.T) {
	var slept []time.Duration
	f := makeField(t, "noise", 13)
	pol := Policy{
		MaxAbs: 1e-13, Verify: VerifyDecode,
		BackoffBase: time.Millisecond, BackoffCap: 3 * time.Millisecond,
		Sleep: func(d time.Duration) { slept = append(slept, d) },
	}
	if _, err := Encode("v", f, core.DefaultOptions(), pol); err != nil {
		t.Fatal(err)
	}
	if len(slept) == 0 {
		t.Fatal("no backoff sleeps recorded")
	}
	for i, d := range slept {
		if d > 3*time.Millisecond {
			t.Errorf("sleep %d = %v exceeds cap", i, d)
		}
	}
	if slept[0] != time.Millisecond {
		t.Errorf("first sleep %v, want base 1ms", slept[0])
	}
}

// TestGuardMetrics: escalations, violations and final mode land in the
// registry under the documented names.
func TestGuardMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	f := makeField(t, "noise", 17)
	pol := Policy{MaxAbs: 1e-13, Verify: VerifyDecode, Observer: reg}
	if _, err := Encode("rho", f, core.DefaultOptions(), pol); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	found := map[string]bool{}
	for _, m := range snap.Metrics {
		found[m.Name] = true
	}
	for _, want := range []string{MetricEscalations, MetricViolations, MetricEncodes, MetricFinalMode} {
		if !found[want] {
			t.Errorf("metric %s not recorded (have %v)", want, found)
		}
	}
}

// TestEnvelopeCorruption: a flipped byte anywhere in the envelope must be
// detected, never silently decoded.
func TestEnvelopeCorruption(t *testing.T) {
	f := makeField(t, "smooth", 21)
	out, err := Encode("v", f, core.DefaultOptions(), Policy{MaxAbs: 1})
	if err != nil {
		t.Fatal(err)
	}
	for pos := 0; pos < len(out.Payload); pos += 7 {
		corrupt := append([]byte(nil), out.Payload...)
		corrupt[pos] ^= 0x40
		if _, err := ParseAnnotation(corrupt); err == nil {
			// The flip may land in the inner stream; the envelope CRC
			// still covers it, so ParseAnnotation must fail everywhere.
			t.Errorf("flip at %d: annotation parsed from corrupt envelope", pos)
		}
	}
	if _, err := ParseAnnotation(out.Payload[:10]); err == nil {
		t.Error("truncated envelope parsed")
	}
	if !IsEnveloped(out.Payload) {
		t.Error("IsEnveloped false on real envelope")
	}
	if IsEnveloped([]byte{1, 2, 3, 4, 5}) {
		t.Error("IsEnveloped true on junk")
	}
}

// TestChooseDivisionsRungHonoured: a loose bound on smooth data must stay
// on the first rung with a small division count, proving the ladder
// starts cheap.
func TestChooseDivisionsRungHonoured(t *testing.T) {
	f := makeField(t, "smooth", 23)
	pol := Policy{MaxAbs: 5, Verify: VerifyDecode}
	out, err := Encode("v", f, core.DefaultOptions(), pol)
	if err != nil {
		t.Fatal(err)
	}
	if out.Annotation.Mode != Bounded {
		t.Fatalf("smooth at loose bound: mode %v, want bounded", out.Annotation.Mode)
	}
	if out.Annotation.Escalations != 0 {
		t.Errorf("escalated %d times on an easy bound", out.Annotation.Escalations)
	}
	if quant.MaxDivisions != 255 {
		t.Fatal("MaxDivisions changed; ladder assumptions stale")
	}
}
