// Package guard enforces reconstruction-quality guarantees around the
// lossy compression pipeline. A Policy declares what a variable must
// satisfy (max absolute error, max range-relative error, PSNR floor); the
// guard verifies each compressed result — analytically from the
// quantization tables, or by full decode in paranoid mode — and on
// violation walks a degradation ladder:
//
//  1. choose_divisions  raise the division count via quant.ChooseDivisions
//  2. simple_method     switch proposed → simple quantization
//  3. lossless_bands    per-band lossless passthrough (wavelet kept)
//  4. lossless          whole-variable gzip-only, bit exact
//
// The final rung needs no verification, so the ladder can never ship a
// silent violation: a variable either provably meets its declared bound
// or is marked lossless-fallback in its annotation. Tao et al. ("Improving
// Performance of Iterative Methods by Lossy Checkpointing") motivates the
// hard guarantee — restart convergence depends on it — and Z-checker the
// compression-time (not restore-time) assessment.
package guard

import (
	"fmt"
	"math"
	"time"

	"lossyckpt/internal/core"
	"lossyckpt/internal/grid"
	"lossyckpt/internal/obs"
	"lossyckpt/internal/obs/journal"
	"lossyckpt/internal/quant"
	"lossyckpt/internal/stats"
	"lossyckpt/internal/wavelet"
)

// Mode is the ladder rung a variable finally shipped at.
type Mode uint8

const (
	// Unbounded: no bound was requested; plain lossy, no guarantee.
	Unbounded Mode = iota
	// Bounded: the lossy stream provably meets the annotated bounds
	// (ladder rungs 1–2).
	Bounded
	// LosslessBands: every wavelet coefficient passes through verbatim;
	// the only error left is wavelet arithmetic rounding (a few ulps).
	LosslessBands
	// Lossless: whole-variable gzip-only, bit exact.
	Lossless
)

func (m Mode) String() string {
	switch m {
	case Unbounded:
		return "unbounded"
	case Bounded:
		return "bounded"
	case LosslessBands:
		return "lossless-bands"
	case Lossless:
		return "lossless"
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}

// VerifyMode selects how a ladder rung's result is checked against the
// policy.
type VerifyMode uint8

const (
	// VerifyAnalytic accepts a rung when the conservative analytic bound
	// — max coefficient quantization error × inverse-transform
	// amplification + rounding slack — meets the policy. No decode, so it
	// costs nothing extra, but its pessimism can escalate further than a
	// measurement would.
	VerifyAnalytic VerifyMode = iota
	// VerifyDecode decodes the freshly encoded stream and measures the
	// actual reconstruction error (roughly doubles encode cost; never
	// over- or under-estimates). The paranoid mode.
	VerifyDecode
)

func (v VerifyMode) String() string {
	if v == VerifyDecode {
		return "decode"
	}
	return "analytic"
}

// ParseVerifyMode maps the CLI's -guard-mode values.
func ParseVerifyMode(s string) (VerifyMode, error) {
	switch s {
	case "analytic", "":
		return VerifyAnalytic, nil
	case "decode", "paranoid":
		return VerifyDecode, nil
	}
	return 0, fmt.Errorf("guard: unknown verify mode %q (want analytic or decode)", s)
}

// DefaultMaxAttempts bounds the compression attempts one variable may
// spend on the ladder before the guard jumps to the lossless rung.
const DefaultMaxAttempts = 8

// Policy declares the quality guarantee a variable must ship with. The
// zero Policy enforces nothing (Enforced() == false): the guard still
// wraps the payload, annotated Unbounded.
type Policy struct {
	// MaxAbs, when positive, caps the absolute reconstruction error
	// (max_i |x_i − x̃_i|).
	MaxAbs float64
	// MaxRel, when positive, caps the range-normalized relative error
	// (Eq. 6, as a fraction: 0.01 = 1%). For constant or non-finite-range
	// data the divisor falls back to 1, matching stats.MaxRelError.
	MaxRel float64
	// PSNRFloor, when positive, is the minimum PSNR in dB.
	PSNRFloor float64
	// Verify selects analytic (default) or decode-and-check verification.
	Verify VerifyMode
	// MaxAttempts caps total compression attempts across ladder rungs
	// (0 = DefaultMaxAttempts). When exhausted the guard jumps straight
	// to the lossless rung and marks the annotation BudgetExhausted.
	MaxAttempts int
	// MaxDuration, when positive, is the wall-clock budget for the ladder;
	// like MaxAttempts it degrades to lossless, never to a violation.
	MaxDuration time.Duration
	// BackoffBase, when positive, sleeps BackoffBase·2^k (capped at
	// BackoffCap, default 100ms) after the k-th violation before the next
	// rung — room for a transiently loaded node to drain before the
	// heavier retry.
	BackoffBase time.Duration
	// BackoffCap caps the backoff sleep (0 = 100ms).
	BackoffCap time.Duration
	// Sleep is swappable for tests (nil = time.Sleep).
	Sleep func(time.Duration)
	// PerVar overrides the bound fields (MaxAbs/MaxRel/PSNRFloor/Verify)
	// for specific variables by name; unset fields inherit the base.
	PerVar map[string]Policy
	// Observer receives guard metrics; nil falls back to obs.Default().
	Observer *obs.Registry
}

// Enforced reports whether the policy demands any guarantee.
func (p Policy) Enforced() bool { return p.MaxAbs > 0 || p.MaxRel > 0 || p.PSNRFloor > 0 }

// ForVar resolves the effective policy for a named variable: the base
// with any per-variable override's non-zero bound fields applied.
func (p Policy) ForVar(name string) Policy {
	o, ok := p.PerVar[name]
	if !ok {
		return p
	}
	eff := p
	eff.PerVar = nil
	if o.MaxAbs != 0 {
		eff.MaxAbs = o.MaxAbs
	}
	if o.MaxRel != 0 {
		eff.MaxRel = o.MaxRel
	}
	if o.PSNRFloor != 0 {
		eff.PSNRFloor = o.PSNRFloor
	}
	if o.Verify != 0 {
		eff.Verify = o.Verify
	}
	if o.MaxAttempts != 0 {
		eff.MaxAttempts = o.MaxAttempts
	}
	if o.MaxDuration != 0 {
		eff.MaxDuration = o.MaxDuration
	}
	return eff
}

func (p Policy) validate() error {
	for _, v := range []float64{p.MaxAbs, p.MaxRel, p.PSNRFloor} {
		if v < 0 || math.IsNaN(v) {
			return fmt.Errorf("guard: invalid bound %g", v)
		}
	}
	if p.MaxAttempts < 0 {
		return fmt.Errorf("guard: negative attempt budget %d", p.MaxAttempts)
	}
	return nil
}

func (p Policy) observer() *obs.Registry {
	if p.Observer != nil {
		return p.Observer
	}
	return obs.Default()
}

// Metric names recorded by the guard.
const (
	// MetricEscalations counts abandoned ladder rungs, labeled
	// step=<rung given up on>.
	MetricEscalations = "lossyckpt_guard_escalations_total"
	// MetricViolations counts bound-verification failures.
	MetricViolations = "lossyckpt_guard_violations_total"
	// MetricEncodes counts guarded encodes, labeled mode=<final Mode>.
	MetricEncodes = "lossyckpt_guard_encodes_total"
	// MetricFinalMode is a per-variable gauge of the final Mode ordinal
	// (0 unbounded, 1 bounded, 2 lossless-bands, 3 lossless).
	MetricFinalMode = "lossyckpt_guard_final_mode"
)

// Outcome is one guarded encode: the enveloped payload plus the guarantee
// established for it.
type Outcome struct {
	Payload    []byte
	Annotation Annotation
	// RawBytes is the uncompressed array size (8 bytes per element).
	RawBytes int
}

// rung is one step of the degradation ladder.
type rung struct {
	name string
	mode Mode
	// build returns the compression options for this rung, or ok=false
	// when the rung cannot help (e.g. the coefficient target is already
	// below arithmetic noise, or the base method is what the rung would
	// switch to).
	build func() (core.Options, bool)
}

// Encode compresses one variable under the policy. The name selects
// per-variable overrides and labels the telemetry; it may be empty.
//
// The returned payload is always a guard envelope (see envelope.go);
// Decode or ckpt's "guard" codec reverses it. Encode never returns a
// stream that silently violates an enforced bound: every failure path
// lands on the bit-exact lossless rung instead.
func Encode(name string, f *grid.Field, base core.Options, pol Policy) (*Outcome, error) {
	pol = pol.ForVar(name)
	if err := pol.validate(); err != nil {
		return nil, err
	}
	o := pol.observer()
	start := time.Now()
	base.LosslessBands = false

	if !pol.Enforced() {
		res, err := core.Compress(f, base)
		if err != nil {
			return nil, err
		}
		nan := math.NaN()
		ann := Annotation{Mode: Unbounded, Attempts: 1,
			AchievedMaxAbs: nan, AchievedMaxRel: nan, AchievedPSNR: nan}
		record(o, name, ann)
		return &Outcome{Payload: wrap(ann, res.Data), Annotation: ann, RawBytes: res.RawBytes}, nil
	}

	rng, maxMag, finite := scan(f.Data())
	effAbs := pol.effectiveAbs(rng)
	amp := amplification(base.Scheme, base.Levels, f.Dims())
	slack := roundingSlack(maxMag, base.Levels, f.Dims())
	ann := Annotation{
		MaxAbs: pol.MaxAbs, MaxRel: pol.MaxRel, PSNRFloor: pol.PSNRFloor,
		Verified: pol.Verify,
	}
	maxAttempts := pol.MaxAttempts
	if maxAttempts == 0 {
		maxAttempts = DefaultMaxAttempts
	}

	// Coefficient-domain target for the quantizer: what the bound becomes
	// after un-amplifying. Analytic mode reserves the rounding slack;
	// decode mode measures, so it spends the whole budget.
	coeffTarget := effAbs / amp
	if pol.Verify == VerifyAnalytic {
		coeffTarget = (effAbs - slack) / amp
	}
	ladder := []rung{
		{"choose_divisions", Bounded, func() (core.Options, bool) {
			opts := base
			opts.ErrorBound = coeffTarget
			return opts, coeffTarget > 0
		}},
		{"simple_method", Bounded, func() (core.Options, bool) {
			opts := base
			opts.ErrorBound = coeffTarget
			opts.Method = quant.Simple
			return opts, coeffTarget > 0 && base.Method != quant.Simple
		}},
		{"lossless_bands", LosslessBands, func() (core.Options, bool) {
			opts := base
			opts.ErrorBound = 0
			opts.LosslessBands = true
			return opts, true
		}},
	}

	// Non-finite values poison the wavelet transform's neighbours (Inf−Inf
	// → NaN spreads through every lossy rung, lossless-bands included), so
	// the analytic bound cannot vouch for any of them; decode mode would
	// measure the same poisoning and fail each rung in turn. Jump straight
	// to the bit-exact rung either way.
	skipLossy := !finite
	violations := 0
	for _, r := range ladder {
		if skipLossy {
			escalate(o, name, r.name, "non-finite data")
			ann.Escalations++
			continue
		}
		if ann.Attempts >= maxAttempts ||
			(pol.MaxDuration > 0 && time.Since(start) > pol.MaxDuration) {
			ann.BudgetExhausted = true
			escalate(o, name, r.name, "budget exhausted")
			ann.Escalations++
			continue
		}
		opts, ok := r.build()
		if !ok {
			escalate(o, name, r.name, "rung not applicable")
			ann.Escalations++
			continue
		}
		ann.Attempts++
		res, err := core.Compress(f, opts)
		if err != nil {
			return nil, fmt.Errorf("guard: rung %s: %w", r.name, err)
		}
		v, err := verify(f, res, opts, pol, rng, amp, slack)
		if err != nil {
			return nil, fmt.Errorf("guard: verify %s: %w", r.name, err)
		}
		if v.ok {
			ann.Mode = r.mode
			ann.AchievedMaxAbs, ann.AchievedMaxRel, ann.AchievedPSNR = v.maxAbs, v.maxRel, v.psnr
			record(o, name, ann)
			return &Outcome{Payload: wrap(ann, res.Data), Annotation: ann, RawBytes: res.RawBytes}, nil
		}
		violations++
		o.Counter(MetricViolations).Inc()
		escalate(o, name, r.name, "bound violated")
		ann.Escalations++
		pol.backoff(violations)
	}

	// Final rung: whole-variable lossless. Bit exact by construction, so
	// it needs no verification and is exempt from the budget — this is
	// what makes a silent violation impossible.
	ann.Attempts++
	res, err := core.CompressGzipOnly(f, base.GzipLevel, base.GzipMode, base.TmpDir)
	if err != nil {
		return nil, fmt.Errorf("guard: lossless rung: %w", err)
	}
	ann.Mode = Lossless
	ann.AchievedMaxAbs, ann.AchievedMaxRel = 0, 0
	ann.AchievedPSNR = math.Inf(1)
	record(o, name, ann)
	return &Outcome{Payload: wrap(ann, res.Data), Annotation: ann, RawBytes: res.RawBytes}, nil
}

// Decode reverses Encode: it unwraps the envelope and decompresses the
// inner stream by the annotated mode. The expected shape is required for
// the lossless (gzip-only) mode and validated against the container
// otherwise when non-nil.
func Decode(payload []byte, shape []int, workers int) (*grid.Field, Annotation, error) {
	ann, inner, err := unwrap(payload)
	if err != nil {
		return nil, ann, err
	}
	var f *grid.Field
	if ann.Mode == Lossless {
		f, err = core.DecompressGzipOnly(inner, shape...)
	} else {
		f, err = core.DecompressAnyParallel(inner, workers)
	}
	if err != nil {
		return nil, ann, err
	}
	if len(shape) > 0 && !sameShape(f.Shape(), shape) {
		return nil, ann, fmt.Errorf("guard: decoded shape %v, want %v", f.Shape(), shape)
	}
	return f, ann, nil
}

// verdict is one rung's verification result. maxAbs/maxRel/psnr are the
// guaranteed (analytic) or measured (decode) quality figures.
type verdict struct {
	ok                   bool
	maxAbs, maxRel, psnr float64
}

// verify checks one rung's result against the policy.
func verify(f *grid.Field, res *core.Result, opts core.Options, pol Policy, rng, amp, slack float64) (verdict, error) {
	if pol.Verify == VerifyDecode {
		g, err := core.DecompressAnyParallel(res.Data, opts.Workers)
		if err != nil {
			return verdict{}, err
		}
		maxAbs, err := stats.MaxAbsError(f.Data(), g.Data())
		if err != nil {
			return verdict{}, err
		}
		maxRel, err := stats.MaxRelError(f.Data(), g.Data())
		if err != nil {
			return verdict{}, err
		}
		psnr, err := stats.PSNR(f.Data(), g.Data())
		if err != nil {
			return verdict{}, err
		}
		return verdict{meets(pol, maxAbs, maxRel, psnr), maxAbs, maxRel, psnr}, nil
	}
	// Analytic: amplify the worst coefficient error through the inverse
	// transform and add rounding slack. ZeroThreshold clips coefficients
	// before quantization, so it adds to the coefficient error first
	// (LosslessBands skips the clipping).
	coeffErr := res.MaxCoeffError
	if !opts.LosslessBands {
		coeffErr += opts.ZeroThreshold
	}
	est := coeffErr*amp + slack
	divisor := rng
	if divisor <= 0 || math.IsInf(divisor, 0) || math.IsNaN(divisor) {
		divisor = 1
	}
	estRel := est / divisor
	estPSNR := math.Inf(1)
	if est > 0 {
		estPSNR = 20 * math.Log10(divisor/est)
	}
	return verdict{meets(pol, est, estRel, estPSNR), est, estRel, estPSNR}, nil
}

// meets applies the policy's enforced bounds; NaN figures fail closed.
func meets(pol Policy, maxAbs, maxRel, psnr float64) bool {
	if math.IsNaN(maxAbs) || math.IsNaN(maxRel) {
		return false
	}
	if pol.MaxAbs > 0 && maxAbs > pol.MaxAbs {
		return false
	}
	if pol.MaxRel > 0 && maxRel > pol.MaxRel {
		return false
	}
	if pol.PSNRFloor > 0 && !(psnr >= pol.PSNRFloor) {
		return false
	}
	return true
}

// effectiveAbs folds every enforced bound into one absolute error target:
// the PSNR floor converts via PSNR ≥ 20·log10(range/maxAbs) (RMSE ≤ max
// abs error, so capping the latter caps the former), the relative bound
// via the Eq. 6 divisor with its constant-array fallback.
func (p Policy) effectiveAbs(rng float64) float64 {
	eff := math.Inf(1)
	if p.MaxAbs > 0 {
		eff = p.MaxAbs
	}
	divisor := rng
	if divisor <= 0 || math.IsInf(divisor, 0) || math.IsNaN(divisor) {
		divisor = 1
	}
	if p.MaxRel > 0 {
		eff = math.Min(eff, p.MaxRel*divisor)
	}
	if p.PSNRFloor > 0 {
		eff = math.Min(eff, divisor*math.Pow(10, -p.PSNRFloor/20))
	}
	return eff
}

// amplification bounds how much the inverse transform can grow a
// worst-case coefficient error. Each inverse axis pass combines two
// inputs: Haar exactly as L ± H (error ≤ sum ≤ 2× the worst input), the
// CDF(5,3) lifting at ≤ 2.5× (evens: err_s + err_d/2 ≤ 1.5×; odds:
// err_d + worst even ≤ 2.5×), bounded here by 3. A level runs one pass
// per axis and levels compose, so the factor is per^(levels·dims) —
// conservative (it assumes every error aligns adversarially) but sound.
func amplification(scheme wavelet.Scheme, levels, dims int) float64 {
	per := 2.0
	if scheme == wavelet.CDF53 {
		per = 3.0
	}
	return math.Pow(per, float64(levels*dims))
}

// roundingSlack over-approximates the float rounding the forward+inverse
// transforms add on top of the amplified quantization error: a few ops
// per element per pass, each ≤ ε·magnitude, with a generous constant to
// cover CDF53's modest intermediate growth.
func roundingSlack(maxMag float64, levels, dims int) float64 {
	if maxMag == 0 || math.IsInf(maxMag, 0) || math.IsNaN(maxMag) {
		return 0
	}
	const eps = 2.220446049250313e-16 // 2^-52
	return 64 * eps * maxMag * float64(levels*dims)
}

// scan returns the finite range, the max finite magnitude, and whether
// every value is finite.
func scan(data []float64) (rng, maxMag float64, finite bool) {
	lo, hi := math.Inf(1), math.Inf(-1)
	finite = true
	for _, v := range data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			finite = false
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
		if a := math.Abs(v); a > maxMag {
			maxMag = a
		}
	}
	if hi < lo { // no finite values at all
		return 0, 0, finite
	}
	return hi - lo, maxMag, finite
}

func (p Policy) backoff(violations int) {
	if p.BackoffBase <= 0 || violations <= 0 {
		return
	}
	cap := p.BackoffCap
	if cap <= 0 {
		cap = 100 * time.Millisecond
	}
	d := p.BackoffBase << uint(violations-1)
	if d > cap || d <= 0 {
		d = cap
	}
	sleep := p.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	sleep(d)
}

func escalate(o *obs.Registry, name, step, why string) {
	o.Counter(MetricEscalations, "step", step).Inc()
	o.Event("guard.escalate", "var", name, "step", step, "why", why)
	journal.Default().Note("guard.escalate", "var", name, "step", step, "why", why)
}

func record(o *obs.Registry, name string, ann Annotation) {
	o.Counter(MetricEncodes, "mode", ann.Mode.String()).Inc()
	o.Gauge(MetricFinalMode, "var", name).Set(float64(ann.Mode))
}

func sameShape(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
