package guard

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

// The guard envelope wraps a codec payload with the guarantee that was
// established for it, so inspect/restore can report what a generation
// actually carries without decoding it:
//
//	magic   u32  "GRD1"
//	version u16
//	mode    u8   Mode
//	verify  u8   VerifyMode that accepted the result
//	flags   u8   bit0: attempt/time budget exhausted
//	policy  3×f64  MaxAbs, MaxRel, PSNRFloor as enforced (0 = unset)
//	achieved 3×f64 AchievedMaxAbs, AchievedMaxRel, AchievedPSNR
//	escalations u16
//	attempts    u16
//	innerLen    u64
//	inner       innerLen bytes (core stream, or gzip-only when Lossless)
//	crc     u32  IEEE CRC32 over everything above
//
// All integers little-endian; floats as IEEE-754 bits.
const (
	envMagic   = 0x31445247 // "GRD1" little-endian
	envVersion = 1

	envHeaderLen  = 4 + 2 + 1 + 1 + 1 + 6*8 + 2 + 2 + 8
	envTrailerLen = 4

	flagBudgetExhausted = 1 << 0
)

// ErrEnvelope indicates a malformed or corrupt guard envelope.
var ErrEnvelope = errors.New("guard: invalid envelope")

// Annotation is the per-variable guarantee record carried in the envelope
// and surfaced by inspect/restore.
type Annotation struct {
	// Mode is the ladder rung the variable finally shipped at.
	Mode Mode
	// Verified is the verification mode that accepted the result
	// (meaningful for Bounded/LosslessBands; Lossless needs none).
	Verified VerifyMode
	// BudgetExhausted reports that the attempt/time budget ran out and
	// the guard jumped straight to the lossless rung rather than risk a
	// silent violation.
	BudgetExhausted bool
	// MaxAbs/MaxRel/PSNRFloor echo the policy as enforced (0 = unset).
	MaxAbs, MaxRel, PSNRFloor float64
	// AchievedMaxAbs/AchievedMaxRel are the guaranteed error ceilings:
	// measured when Verified == VerifyDecode, a conservative analytic
	// bound otherwise; exactly 0 for Lossless. NaN when no guarantee was
	// established (Unbounded).
	AchievedMaxAbs, AchievedMaxRel float64
	// AchievedPSNR is the matching PSNR floor in dB (+Inf when exact,
	// NaN when not established).
	AchievedPSNR float64
	// Escalations is how many ladder rungs were abandoned before the
	// final one; Attempts is how many compressions were spent in total.
	Escalations, Attempts int
}

// Guaranteed reports whether the annotation carries an enforced bound:
// every mode except Unbounded does.
func (a Annotation) Guaranteed() bool { return a.Mode != Unbounded }

// String renders the guarantee the way the CLI reports it.
func (a Annotation) String() string {
	switch a.Mode {
	case Lossless:
		s := "lossless (bit-exact"
		if a.BudgetExhausted {
			s += ", budget exhausted"
		}
		if a.Escalations > 0 {
			s += fmt.Sprintf(", after %d escalations", a.Escalations)
		}
		return s + ")"
	case LosslessBands, Bounded:
		s := fmt.Sprintf("%s: max-abs ≤ %.6g", a.Mode, a.AchievedMaxAbs)
		if a.MaxRel > 0 || a.PSNRFloor > 0 {
			s += fmt.Sprintf(", max-rel ≤ %.6g", a.AchievedMaxRel)
		}
		if a.PSNRFloor > 0 && !math.IsNaN(a.AchievedPSNR) {
			s += fmt.Sprintf(", PSNR ≥ %.4g dB", a.AchievedPSNR)
		}
		return s + fmt.Sprintf(" (%s-verified)", a.Verified)
	default:
		return "unbounded (no guarantee requested)"
	}
}

// wrap serializes the annotation around an inner payload.
func wrap(a Annotation, inner []byte) []byte {
	buf := make([]byte, 0, envHeaderLen+len(inner)+envTrailerLen)
	var tmp [8]byte
	put32 := func(v uint32) {
		binary.LittleEndian.PutUint32(tmp[:4], v)
		buf = append(buf, tmp[:4]...)
	}
	put16 := func(v uint16) {
		binary.LittleEndian.PutUint16(tmp[:2], v)
		buf = append(buf, tmp[:2]...)
	}
	put64f := func(v float64) {
		binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(v))
		buf = append(buf, tmp[:]...)
	}
	put32(envMagic)
	put16(envVersion)
	var flags byte
	if a.BudgetExhausted {
		flags |= flagBudgetExhausted
	}
	buf = append(buf, byte(a.Mode), byte(a.Verified), flags)
	for _, v := range []float64{a.MaxAbs, a.MaxRel, a.PSNRFloor,
		a.AchievedMaxAbs, a.AchievedMaxRel, a.AchievedPSNR} {
		put64f(v)
	}
	put16(clamp16(a.Escalations))
	put16(clamp16(a.Attempts))
	binary.LittleEndian.PutUint64(tmp[:], uint64(len(inner)))
	buf = append(buf, tmp[:]...)
	buf = append(buf, inner...)
	put32(crc32.ChecksumIEEE(buf[:len(buf)]))
	return buf
}

func clamp16(v int) uint16 {
	if v < 0 {
		return 0
	}
	if v > math.MaxUint16 {
		return math.MaxUint16
	}
	return uint16(v)
}

// unwrap validates the envelope and returns the annotation plus the inner
// payload (aliasing the input).
func unwrap(payload []byte) (Annotation, []byte, error) {
	var a Annotation
	if len(payload) < envHeaderLen+envTrailerLen {
		return a, nil, fmt.Errorf("%w: %d bytes, need ≥ %d", ErrEnvelope, len(payload), envHeaderLen+envTrailerLen)
	}
	if binary.LittleEndian.Uint32(payload) != envMagic {
		return a, nil, fmt.Errorf("%w: bad magic", ErrEnvelope)
	}
	if v := binary.LittleEndian.Uint16(payload[4:]); v != envVersion {
		return a, nil, fmt.Errorf("%w: version %d", ErrEnvelope, v)
	}
	body := len(payload) - envTrailerLen
	want := binary.LittleEndian.Uint32(payload[body:])
	if got := crc32.ChecksumIEEE(payload[:body]); got != want {
		return a, nil, fmt.Errorf("%w: crc mismatch (%08x != %08x)", ErrEnvelope, got, want)
	}
	a.Mode = Mode(payload[6])
	a.Verified = VerifyMode(payload[7])
	a.BudgetExhausted = payload[8]&flagBudgetExhausted != 0
	if a.Mode > Lossless || a.Verified > VerifyDecode {
		return a, nil, fmt.Errorf("%w: mode %d / verify %d", ErrEnvelope, a.Mode, a.Verified)
	}
	off := 9
	next := func() float64 {
		v := math.Float64frombits(binary.LittleEndian.Uint64(payload[off:]))
		off += 8
		return v
	}
	a.MaxAbs, a.MaxRel, a.PSNRFloor = next(), next(), next()
	a.AchievedMaxAbs, a.AchievedMaxRel, a.AchievedPSNR = next(), next(), next()
	a.Escalations = int(binary.LittleEndian.Uint16(payload[off:]))
	a.Attempts = int(binary.LittleEndian.Uint16(payload[off+2:]))
	innerLen := binary.LittleEndian.Uint64(payload[off+4:])
	if innerLen != uint64(body-envHeaderLen) {
		return a, nil, fmt.Errorf("%w: inner length %d, have %d", ErrEnvelope, innerLen, body-envHeaderLen)
	}
	return a, payload[envHeaderLen:body], nil
}

// ParseAnnotation reads the guarantee record off an enveloped payload
// without decoding the inner stream (inspect's fast path).
func ParseAnnotation(payload []byte) (Annotation, error) {
	a, _, err := unwrap(payload)
	return a, err
}

// IsEnveloped reports whether the payload starts with the guard magic —
// a cheap sniff for inspect-style tooling (the envelope CRC still decides
// validity).
func IsEnveloped(payload []byte) bool {
	return len(payload) >= 4 && binary.LittleEndian.Uint32(payload) == envMagic
}

// InnerPayload validates the envelope and returns the wrapped compressed
// stream (aliasing the input) — inspect-style tooling uses it to sniff
// the entropy framing under the guarantee record.
func InnerPayload(payload []byte) ([]byte, error) {
	_, inner, err := unwrap(payload)
	return inner, err
}
