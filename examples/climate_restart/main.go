// Climate restart: the paper's full checkpoint/restart workflow (§IV-E)
// on the NICAM stand-in. A climate run is checkpointed with the lossy
// codec, a failure is simulated, the run restarts from the decompressed
// checkpoint, and the example tracks how the restarted run's temperature
// field drifts from the uninterrupted reference over subsequent steps.
package main

import (
	"bytes"
	"fmt"
	"log"

	"lossyckpt/internal/ckpt"
	"lossyckpt/internal/climate"
	"lossyckpt/internal/stats"
)

func main() {
	// A reduced grid keeps this example under a few seconds; pass the
	// paper's 1156×82×2 via climate.DefaultConfig() for the full run.
	cfg := climate.DefaultConfig()
	cfg.Nx, cfg.Nz = 289, 41

	const (
		checkpointStep = 120 // the paper checkpoints at step 720
		extraSteps     = 200 // the paper re-runs 1500 steps after restart
		sampleEvery    = 40
	)

	reference, err := climate.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	reference.StepN(checkpointStep)

	// Checkpoint all five physical arrays with the lossy codec.
	manager := ckpt.NewManager(ckpt.NewLossy(), 0)
	for _, nf := range reference.Fields() {
		if err := manager.Register(nf.Name, nf.Field); err != nil {
			log.Fatal(err)
		}
	}
	var checkpoint bytes.Buffer
	report, err := manager.Checkpoint(&checkpoint, reference.StepCount())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint at step %d: %d arrays, %d -> %d bytes (cr %.2f%%) in %v\n",
		report.Step, len(report.Entries), report.RawBytes,
		report.CompressedBytes, report.CompressionRatePct(), report.Wall)

	// --- simulated failure: the application restarts from scratch ---

	restarted, err := climate.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	restartMgr := ckpt.NewManager(ckpt.NewLossy(), 0)
	for _, nf := range restarted.Fields() {
		if err := restartMgr.Register(nf.Name, nf.Field); err != nil {
			log.Fatal(err)
		}
	}
	restoreRep, err := restartMgr.Restore(bytes.NewReader(checkpoint.Bytes()))
	if err != nil {
		log.Fatal(err)
	}
	restarted.SetStepCount(restoreRep.Step)
	fmt.Printf("restored to step %d in %v\n", restoreRep.Step, restoreRep.Wall)

	// Immediate error: the cost of lossy compression alone.
	imm, _ := stats.Compare(reference.Field("temperature").Data(),
		restarted.Field("temperature").Data())
	fmt.Printf("immediate temperature error after restore: %s\n", imm)

	// Both runs continue; the error drifts like a random walk (Fig. 10).
	fmt.Println("\nstep   avg temperature error [%]")
	for done := 0; done < extraSteps; done += sampleEvery {
		reference.StepN(sampleEvery)
		restarted.StepN(sampleEvery)
		s, _ := stats.Compare(reference.Field("temperature").Data(),
			restarted.Field("temperature").Data())
		fmt.Printf("%5d  %.5f\n", reference.StepCount(), s.AvgPct)
	}
	fmt.Println("\nthe error stays of the order of the compression error —")
	fmt.Println("the paper's argument for lossy checkpointing (§IV-E).")
}
