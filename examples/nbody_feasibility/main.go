// N-body feasibility: apply the wavelet compressor to data that violates
// its smoothness premise. The paper targets mesh fields (pressure,
// temperature, velocity) and its related work [31] studies lossy
// checkpointing of N-body cosmology codes; this example compresses the
// particle arrays of a gravitational N-body run, contrasts the results
// with a smooth climate field, and checks the physical damage a lossy
// restart does via energy conservation.
package main

import (
	"fmt"
	"log"
	"math"

	"lossyckpt/internal/climate"
	"lossyckpt/internal/core"
	"lossyckpt/internal/nbody"
	"lossyckpt/internal/stats"
)

func main() {
	sys, err := nbody.New(nbody.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	sys.StepN(200)

	fmt.Println("lossy compression of N-body particle arrays (proposed, n=128)")
	fmt.Println("array   cr [%]   avg err [%]   max err [%]")
	opts := core.DefaultOptions()
	for _, nf := range sys.Fields() {
		restored, res, err := core.RoundTrip(nf.Field, opts)
		if err != nil {
			log.Fatal(err)
		}
		s, _ := stats.Compare(nf.Field.Data(), restored.Data())
		fmt.Printf("%-6s  %6.2f   %11.5f   %11.5f\n",
			nf.Name, res.CompressionRatePct(), s.AvgPct, s.MaxPct)
	}

	// Contrast: the same pipeline on a smooth climate field.
	ccfg := climate.DefaultConfig()
	ccfg.Nx, ccfg.Nz = 289, 41
	model, err := climate.New(ccfg)
	if err != nil {
		log.Fatal(err)
	}
	model.StepN(60)
	temp := model.Field("temperature")
	restored, res, err := core.RoundTrip(temp, opts)
	if err != nil {
		log.Fatal(err)
	}
	s, _ := stats.Compare(temp.Data(), restored.Data())
	fmt.Printf("\nfor comparison, climate temperature: cr %.2f%%, avg err %.5f%%\n",
		res.CompressionRatePct(), s.AvgPct)
	fmt.Println("particle-order arrays are not spatially smooth, so the wavelet")
	fmt.Println("high band does not concentrate and compression degrades (paper §III-A).")

	// Physical impact of a lossy restart: energy conservation.
	e0 := sys.Energy()
	restartSys := sys.Clone()
	for _, nf := range restartSys.Fields() {
		lossyField, _, err := core.RoundTrip(nf.Field, opts)
		if err != nil {
			log.Fatal(err)
		}
		copy(nf.Field.Data(), lossyField.Data())
	}
	restartSys.RefreshDerived()
	e1 := restartSys.Energy()
	fmt.Printf("\nenergy before lossy restart: %.6f, after: %.6f (|Δ| = %.2g)\n",
		e0, e1, math.Abs(e1-e0))
	fmt.Println("lossy compression perturbs conserved quantities — the paper's §IV-E")
	fmt.Println("caveat that some applications may need post-restart data adjustment.")

	sys.StepN(100)
	restartSys.StepN(100)
	drift, _ := stats.Compare(sys.Fields()[0].Field.Data(), restartSys.Fields()[0].Field.Data())
	fmt.Printf("\nposition drift 100 steps after the lossy restart: %s\n", drift)
}
