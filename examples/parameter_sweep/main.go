// Parameter sweep: the paper's Figs. 7–8 trade-off on your own data — for
// each division number n, measure compression rate and relative error with
// both quantization methods, and additionally let the error-bound API pick
// n automatically (the paper's §IV-C future work).
package main

import (
	"fmt"
	"log"

	"lossyckpt/internal/climate"
	"lossyckpt/internal/core"
	"lossyckpt/internal/quant"
	"lossyckpt/internal/stats"
	"lossyckpt/internal/wavelet"
)

func main() {
	cfg := climate.DefaultConfig()
	cfg.Nx, cfg.Nz = 289, 41
	model, err := climate.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	model.StepN(90)
	temp := model.Field("temperature")

	fmt.Println("division-number sweep on the temperature array")
	fmt.Println("   n  simple: cr[%]  err[%]   proposed: cr[%]  err[%]")
	for _, n := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
		row := fmt.Sprintf("%4d", n)
		for _, method := range []quant.Method{quant.Simple, quant.Proposed} {
			opts := core.DefaultOptions()
			opts.Method = method
			opts.Divisions = n
			restored, res, err := core.RoundTrip(temp, opts)
			if err != nil {
				log.Fatal(err)
			}
			s, _ := stats.Compare(temp.Data(), restored.Data())
			row += fmt.Sprintf("       %6.2f  %7.4f", res.CompressionRatePct(), s.AvgPct)
		}
		fmt.Println(row)
	}

	// Error-bound-driven selection: "give me the smallest n that keeps the
	// max quantization error below the bound".
	work := temp.Clone()
	plan, err := wavelet.NewPlan(work.Shape(), 1, wavelet.Haar)
	if err != nil {
		log.Fatal(err)
	}
	if err := plan.Transform(work); err != nil {
		log.Fatal(err)
	}
	high, err := plan.GatherHigh(work, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nerror-bound-driven division selection (proposed method)")
	for _, bound := range []float64{0.5, 0.05, 0.005} {
		n, q, err := quant.ChooseDivisions(high, bound, quant.Proposed, quant.DefaultSpikeDivisions)
		if err == quant.ErrBoundUnreachable {
			fmt.Printf("  bound %g: unreachable within n ≤ %d\n", bound, quant.MaxDivisions)
			continue
		}
		if err != nil {
			log.Fatal(err)
		}
		achieved, _ := quant.MaxQuantizationError(high, q)
		fmt.Printf("  bound %g: chose n=%d (achieved max error %.4g)\n", bound, n, achieved)
	}
}
