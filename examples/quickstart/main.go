// Quickstart: compress one smooth 3D array with the paper's pipeline,
// decompress it, and report the compression rate and relative error —
// the minimal end-to-end use of the library.
package main

import (
	"fmt"
	"log"
	"math"

	"lossyckpt/internal/core"
	"lossyckpt/internal/grid"
	"lossyckpt/internal/quant"
	"lossyckpt/internal/stats"
)

func main() {
	// Build a smooth "physical quantity" array, the class of data the
	// compressor targets (paper §III: pressures, temperatures,
	// velocities of mesh-based applications).
	field := grid.MustNew(256, 64, 2)
	for i := 0; i < 256; i++ {
		for k := 0; k < 64; k++ {
			for c := 0; c < 2; c++ {
				v := 300 +
					25*math.Sin(2*math.Pi*float64(i)/256) +
					10*math.Cos(math.Pi*float64(k)/64) +
					0.5*float64(c)
				field.Set(v, i, k, c)
			}
		}
	}

	// The paper's headline configuration: 1-level Haar, proposed
	// quantization with n=128 divisions, gzip at the end.
	opts := core.DefaultOptions()

	result, err := core.Compress(field, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compressed %d bytes to %d bytes (compression rate %.2f%%)\n",
		result.RawBytes, result.CompressedBytes, result.CompressionRatePct())
	fmt.Printf("phase breakdown: wavelet=%v quantize=%v encode=%v gzip=%v\n",
		result.Timings.Wavelet, result.Timings.Quantize,
		result.Timings.Encode, result.Timings.Gzip)

	restored, err := core.Decompress(result.Data)
	if err != nil {
		log.Fatal(err)
	}
	summary, err := stats.Compare(field.Data(), restored.Data())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("relative error after round trip: %s\n", summary)

	// Trade accuracy for size: the simple quantizer with few divisions.
	cheap := opts
	cheap.Method = quant.Simple
	cheap.Divisions = 4
	cheapRes, err := core.Compress(field, cheap)
	if err != nil {
		log.Fatal(err)
	}
	cheapField, err := core.Decompress(cheapRes.Data)
	if err != nil {
		log.Fatal(err)
	}
	cheapSum, _ := stats.Compare(field.Data(), cheapField.Data())
	fmt.Printf("simple n=4: compression rate %.2f%%, error %s\n",
		cheapRes.CompressionRatePct(), cheapSum)
}
