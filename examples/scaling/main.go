// Scaling: the paper's Fig. 9 projection — measure this machine's
// per-process compression breakdown on a paper-sized array, then model
// overall checkpoint time with and without compression across process
// counts on a 20 GB/s shared parallel filesystem, locating the crossover
// where compression starts to win.
package main

import (
	"fmt"
	"log"
	"time"

	"lossyckpt/internal/climate"
	"lossyckpt/internal/core"
	"lossyckpt/internal/gzipio"
	"lossyckpt/internal/iomodel"
)

func main() {
	// Warm up a paper-shaped model briefly and grab its temperature array
	// (~1.5 MB, the paper's per-process checkpoint unit).
	cfg := climate.DefaultConfig()
	model, err := climate.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	model.StepN(30)
	temp := model.Field("temperature")

	// Measure the per-process compression cost with the paper prototype's
	// temp-file gzip path (so the Fig. 9 "temporal file write" component
	// exists), taking the fastest of a few runs.
	opts := core.DefaultOptions()
	opts.GzipMode = gzipio.TempFile
	var best *core.Result
	for i := 0; i < 5; i++ {
		res, err := core.Compress(temp, opts)
		if err != nil {
			log.Fatal(err)
		}
		if best == nil || res.Timings.Total < best.Timings.Total {
			best = res
		}
	}
	fmt.Printf("measured per-process compression of %d bytes (cr %.1f%%):\n",
		best.RawBytes, best.CompressionRatePct())
	fmt.Printf("  wavelet %v, quantize+encode %v, temp write %v, gzip %v\n",
		best.Timings.Wavelet, best.Timings.Quantize+best.Timings.Encode,
		best.Timings.TempWrite, best.Timings.Gzip)

	est := iomodel.Estimator{
		PerProcessBytes: int64(best.RawBytes),
		CompressionRate: float64(best.CompressedBytes) / float64(best.RawBytes),
		FS:              iomodel.PaperFS,
		Compression:     best.Timings,
	}

	fmt.Println("\n    P   with comp [ms]   w/o comp [ms]")
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	for _, p := range []int{256, 512, 768, 1024, 1280, 1536, 1792, 2048} {
		b, err := est.At(p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%5d   %14.2f   %13.2f\n", p, ms(b.TotalWith), ms(b.TotalWithout))
	}

	cross, err := est.Crossover(1 << 24)
	if err != nil {
		log.Fatal(err)
	}
	saving, err := est.SavingPctAt(2048)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncompression wins from P = %d processes (paper: ≈768)\n", cross)
	fmt.Printf("saving at P=2048: %.0f%% (paper: 55%%)\n", saving)
	fmt.Printf("asymptotic saving: %.0f%% (paper: 81%%)\n", est.AsymptoticSavingPct())
}
