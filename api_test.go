package lossyckpt

import (
	"bytes"
	"math"
	"testing"
)

// These tests exercise the public façade exactly as a downstream user
// would, without touching internal packages.

func publicSmoothField(t *testing.T) *Field {
	t.Helper()
	f, err := NewField(128, 32, 2)
	if err != nil {
		t.Fatal(err)
	}
	d := f.Data()
	for i := range d {
		d[i] = 250 + 40*math.Sin(float64(i)/300) + 5*math.Cos(float64(i)/17)
	}
	return f
}

func TestPublicCompressDecompress(t *testing.T) {
	f := publicSmoothField(t)
	res, err := Compress(f, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.CompressionRatePct() >= 100 {
		t.Errorf("cr %.1f%%", res.CompressionRatePct())
	}
	g, err := Decompress(res.Data)
	if err != nil {
		t.Fatal(err)
	}
	s, err := CompareFields(f, g)
	if err != nil {
		t.Fatal(err)
	}
	if s.AvgPct > 1 {
		t.Errorf("avg error %.4f%%", s.AvgPct)
	}
}

func TestPublicRoundTripAndOptions(t *testing.T) {
	f := publicSmoothField(t)
	opts := DefaultOptions()
	opts.Method = SimpleQuantization
	opts.Scheme = CDF53Wavelet
	opts.Divisions = 32
	g, res, err := RoundTrip(f, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.CompressedBytes <= 0 {
		t.Error("empty result")
	}
	if !f.SameShape(g) {
		t.Error("shape changed")
	}
}

func TestPublicFieldFromSlice(t *testing.T) {
	data := make([]float64, 60)
	f, err := FieldFromSlice(data, 5, 12)
	if err != nil {
		t.Fatal(err)
	}
	data[7] = 3.5
	if f.Data()[7] != 3.5 {
		t.Error("FieldFromSlice copied the slice")
	}
	if _, err := FieldFromSlice(data, 7, 7); err == nil {
		t.Error("bad shape accepted")
	}
}

func TestPublicCompressionRatePct(t *testing.T) {
	if got := CompressionRatePct(19, 100); got != 19 {
		t.Errorf("CompressionRatePct = %g", got)
	}
}

func TestPublicManagerWorkflow(t *testing.T) {
	temp := publicSmoothField(t)
	orig := temp.Clone()

	for _, mk := range []func() Codec{NewLossyCodec, NewGzipCodec, NewFPCCodec, NewRawCodec} {
		codec := mk()
		mgr := NewManager(codec, 0)
		if err := mgr.Register("temperature", temp); err != nil {
			t.Fatal(err)
		}
		var stream bytes.Buffer
		rep, err := mgr.Checkpoint(&stream, 42)
		if err != nil {
			t.Fatalf("%s: %v", codec.Name(), err)
		}
		if rep.Step != 42 {
			t.Errorf("%s: step %d", codec.Name(), rep.Step)
		}
		temp.Fill(0)
		if _, err := mgr.Restore(&stream); err != nil {
			t.Fatalf("%s: restore: %v", codec.Name(), err)
		}
		s, _ := CompareFields(orig, temp)
		if codec.Lossless() && s.MaxPct != 0 {
			t.Errorf("%s: lossless codec introduced error %v", codec.Name(), s)
		}
		if s.AvgPct > 1 {
			t.Errorf("%s: error %v", codec.Name(), s)
		}
		// Restore original content for the next codec round.
		copy(temp.Data(), orig.Data())
	}
}

func TestPublicCodecByName(t *testing.T) {
	for _, n := range []string{"none", "gzip", "fpc", "lossy", "guard"} {
		c, err := CodecByName(n)
		if err != nil || c.Name() != n {
			t.Errorf("CodecByName(%q): %v %v", n, c, err)
		}
	}
	if _, err := CodecByName("sz3"); err == nil {
		t.Error("unknown codec accepted")
	}
}

func TestPublicChunkedAndPSNR(t *testing.T) {
	f := publicSmoothField(t)
	res, err := CompressChunked(f, DefaultOptions(), 32)
	if err != nil {
		t.Fatal(err)
	}
	g, err := DecompressAny(res.Data)
	if err != nil {
		t.Fatal(err)
	}
	if !f.SameShape(g) {
		t.Fatal("chunked shape mismatch")
	}
	p, err := PSNR(f, g)
	if err != nil {
		t.Fatal(err)
	}
	if p < 40 {
		t.Errorf("PSNR %g dB unexpectedly low", p)
	}
	// DecompressAny also handles plain streams.
	plain, err := Compress(f, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecompressAny(plain.Data); err != nil {
		t.Errorf("DecompressAny on plain stream: %v", err)
	}
}

func TestPublicErrorBound(t *testing.T) {
	f := publicSmoothField(t)
	opts := DefaultOptions()
	opts.ErrorBound = 0.05
	res, err := Compress(f, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.BoundUnreachable {
		t.Error("0.05 bound unreachable on smooth data")
	}
	if res.EffectiveDivisions < 1 {
		t.Error("no effective divisions reported")
	}
}

func TestPublicGuardCodec(t *testing.T) {
	temp := publicSmoothField(t)
	orig := temp.Clone()
	const bound = 1e-3

	codec := NewGuardCodec(GuardPolicy{MaxAbs: bound, Verify: VerifyDecode})
	mgr := NewManager(codec, 0)
	if err := mgr.Register("temperature", temp); err != nil {
		t.Fatal(err)
	}
	var stream bytes.Buffer
	rep, err := mgr.Checkpoint(&stream, 7)
	if err != nil {
		t.Fatal(err)
	}
	var ann *GuardAnnotation
	for _, e := range rep.Entries {
		ann = e.Guarantee
	}
	if ann == nil || !ann.Guaranteed() || ann.MaxAbs != bound {
		t.Fatalf("guard annotation %+v, want enforced bound %v", ann, bound)
	}
	temp.Fill(0)
	if _, err := mgr.Restore(&stream); err != nil {
		t.Fatal(err)
	}
	maxAbs, err := MaxAbsError(orig, temp)
	if err != nil {
		t.Fatal(err)
	}
	if maxAbs > bound {
		t.Fatalf("restored error %v exceeds declared bound %v", maxAbs, bound)
	}
}
